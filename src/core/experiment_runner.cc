#include "src/core/experiment_runner.h"

#include <cassert>
#include <utility>

#include "src/core/journal/journal.h"

namespace mfc {

Deployment::Deployment(const SiteInstance& instance, const DeploymentOptions& options) {
  Rng rng(options.seed);
  content_ = GenerateSite(rng, instance.site);

  // Server or cluster. The EventLoop lives inside the testbed, so build the
  // testbed core first: construct testbed with a placeholder? No — the
  // servers need the loop; create testbed after servers but the servers need
  // the loop owned by the testbed. Order: testbed owns the loop, so the
  // servers are created against it afterwards and the target pointer is
  // injected. SimTestbed takes the target by reference at construction, so a
  // small indirection target shim is used instead.
  struct Shim : HttpTarget {
    HttpTarget* inner = nullptr;
    const ContentStore* content = nullptr;
    void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) override {
      inner->OnRequest(request, is_mfc, std::move(transport));
    }
    const ContentStore* Content() const override { return content; }
  };
  static_assert(sizeof(Shim) > 0);

  TestbedConfig testbed_config;
  testbed_config.wan.server_access_bps = instance.server_access_bps;
  testbed_config.wan.jitter_sigma = options.jitter_sigma;
  testbed_config.wan.control_loss_rate = options.control_loss_rate;

  auto fleet = options.lan_clients ? MakeLanFleet(options.fleet_size)
                                   : MakePlanetLabFleet(rng, options.fleet_size);

  auto shim = std::make_unique<Shim>();
  shim->content = &content_;
  Shim* shim_raw = shim.get();
  shim_.reset(shim.release());

  testbed_ = std::make_unique<SimTestbed>(rng.NextU64(), testbed_config, std::move(fleet),
                                          *shim_raw);

  if (instance.replicas > 1) {
    cluster_ = std::make_unique<ServerCluster>(testbed_->Loop(), instance.server,
                                               instance.replicas, &content_);
    target_ = cluster_.get();
  } else {
    server_ = std::make_unique<WebServer>(testbed_->Loop(), instance.server, &content_);
    target_ = server_.get();
  }
  shim_raw->inner = target_;

  if (options.background_rps > 0.0) {
    BackgroundTrafficConfig bg;
    bg.requests_per_second = options.background_rps;
    // Background responses stream to random fleet clients so they contend
    // for the same server access link as the probes.
    background_ = std::make_unique<BackgroundTraffic>(
        testbed_->Loop(), rng, bg, *target_, [this]() -> ResponseTransport {
          size_t client = background_client_++ % testbed_->ClientCount();
          return [this, client](HttpStatus, double bytes, std::function<void()> on_sent) {
            testbed_->Wan().StartDownload(client, bytes, std::move(on_sent));
          };
        });
  }
}

WebServer& Deployment::Server() {
  if (server_ != nullptr) {
    return *server_;
  }
  assert(cluster_ != nullptr);
  return cluster_->Replica(0);
}

ContentProfile Deployment::CrawlProfile(CrawlLimits limits, ProfileThresholds thresholds) {
  Url root;
  root.host = "target.example.com";
  Crawler crawler(*testbed_, limits, thresholds);
  return crawler.Crawl(root);
}

StageObjects Deployment::ProfileByCrawl(CrawlLimits limits, ProfileThresholds thresholds) {
  return SelectStageObjects(CrawlProfile(limits, thresholds),
                            content_.Objects().empty()
                                ? true
                                : true /* uniqueness assumed, as in the paper */);
}

StageObjects Deployment::ObjectsFromContent() const {
  StageObjects objects;
  ProfileThresholds thresholds;
  Url root;
  root.host = "target.example.com";
  if (content_.BasePage() != nullptr) {
    Url base = root;
    base.path = content_.BasePage()->path;
    objects.base_page = base;
  }
  const WebObject* best_large = nullptr;
  const WebObject* first_query = nullptr;
  for (const WebObject& object : content_.Objects()) {
    if (!object.dynamic && object.size_bytes >= thresholds.large_object_min_bytes &&
        object.size_bytes <= 2 * 1024 * 1024) {
      if (best_large == nullptr || object.size_bytes > best_large->size_bytes) {
        best_large = &object;
      }
    }
    if (object.dynamic && object.size_bytes < thresholds.small_query_max_bytes &&
        first_query == nullptr) {
      first_query = &object;
    }
  }
  if (best_large != nullptr) {
    Url large = root;
    large.path = best_large->path;
    objects.large_object = large;
  }
  if (first_query != nullptr) {
    Url query = root;
    query.path = first_query->path;
    query.query = "id=0";
    objects.small_query = query;
    objects.small_query_unique = first_query->unique_per_query;
  }
  return objects;
}

ExperimentResult Deployment::RunMfc(const ExperimentConfig& config, const StageObjects& objects,
                                    uint64_t coordinator_seed) {
  Coordinator coordinator(*testbed_, config, coordinator_seed);
  return coordinator.Run(objects);
}

void Deployment::StartBackground() {
  if (background_ != nullptr) {
    background_->Start();
  }
}

void Deployment::StopBackground() {
  if (background_ != nullptr) {
    background_->Stop();
  }
}

uint64_t Deployment::BackgroundRequests() const {
  return background_ != nullptr ? background_->RequestsIssued() : 0;
}

void Deployment::SetTelemetry(Telemetry* telemetry) {
  testbed_->Wan().Flows().SetMetrics(telemetry != nullptr ? telemetry->metrics : nullptr);
  if (server_ != nullptr) {
    server_->SetTelemetry(telemetry);
  }
  if (cluster_ != nullptr) {
    for (size_t i = 0; i < cluster_->ReplicaCount(); ++i) {
      cluster_->Replica(i).SetTelemetry(telemetry);
    }
  }
}

ExperimentResult RunSiteExperiment(const SiteInstance& instance, const ExperimentConfig& config,
                                   const std::vector<StageKind>& stages, uint64_t seed,
                                   Telemetry* telemetry) {
  DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = std::max<size_t>(config.min_clients, 85);
  // Long-tail instances carry ambient visitor load; classic cohorts leave
  // this at 0 and the deployment never constructs a background generator, so
  // their event streams are bit-for-bit what they were before the field
  // existed.
  options.background_rps = instance.background_rps;
  Deployment deployment(instance, options);
  if (telemetry != nullptr) {
    deployment.SetTelemetry(telemetry);
  }
  StageObjects objects = deployment.ObjectsFromContent();
  Coordinator coordinator(deployment.Testbed(), config, seed ^ 0x9e3779b9);
  if (telemetry != nullptr) {
    coordinator.SetTelemetry(telemetry);
  }
  deployment.StartBackground();
  ExperimentResult result = coordinator.Run(objects, stages);
  deployment.StopBackground();
  return result;
}

ExperimentResult RunSurveyExperiment(Rng& rng, Cohort cohort, const ExperimentConfig& config,
                                     const std::vector<StageKind>& stages, uint64_t seed) {
  return RunSiteExperiment(SampleSite(rng, cohort), config, stages, seed);
}

ExperimentResult RunSurveyExperiment(Rng& rng, Cohort cohort, const ExperimentConfig& config,
                                     const std::vector<StageKind>& stages, uint64_t seed,
                                     SurveyJournal* journal, size_t index) {
  // Sample unconditionally: replayed sites must consume the same draws a
  // live run would, or later sites would see a shifted stream.
  SiteInstance instance = SampleSite(rng, cohort);
  if (journal != nullptr) {
    if (const JournalSiteRecord* replay = journal->SiteAt(journal->CurrentOrdinal(), index)) {
      journal->resumed_sites.fetch_add(1, std::memory_order_relaxed);
      return replay->result;
    }
  }
  ExperimentResult result = RunSiteExperiment(instance, config, stages, seed);
  if (journal != nullptr) {
    JournalSiteRecord record;
    record.cohort_ordinal = journal->CurrentOrdinal();
    record.site_index = index;
    record.seed = seed;
    record.stage = stages.empty() ? StageKind::kBase : stages[0];
    record.pid = index;
    record.result = result;
    journal->AppendSite(record);
  }
  return result;
}

}  // namespace mfc
