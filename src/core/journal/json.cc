#include "src/core/journal/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mfc {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = strlen(word);
    if (text_.substr(pos_, n) != word) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->scalar);
      case 't':
        if (!Literal("true")) {
          return Fail("bad literal");
        }
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!Literal("false")) {
          return Fail("bad literal");
        }
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!Literal("null")) {
          return Fail("bad literal");
        }
        out->kind = JsonValue::Kind::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // The writer only emits \u00XX for control bytes; decode the
          // low byte and encode anything else as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->scalar = std::string(text_.substr(start, pos_ - start));
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : fields) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

uint64_t JsonValue::U64(bool* ok) const {
  if (kind != Kind::kNumber || scalar.empty()) {
    if (ok != nullptr) {
      *ok = false;
    }
    return 0;
  }
  char* end = nullptr;
  uint64_t v = strtoull(scalar.c_str(), &end, 10);
  bool good = end != nullptr && *end == '\0';
  if (ok != nullptr) {
    *ok = good;
  }
  return good ? v : 0;
}

double JsonValue::Double(bool* ok) const {
  if (kind != Kind::kNumber || scalar.empty()) {
    if (ok != nullptr) {
      *ok = false;
    }
    return 0.0;
  }
  char* end = nullptr;
  double v = strtod(scalar.c_str(), &end);
  bool good = end != nullptr && *end == '\0';
  if (ok != nullptr) {
    *ok = good;
  }
  return good ? v : 0.0;
}

bool JsonValue::Bool(bool* ok) const {
  if (kind != Kind::kBool) {
    if (ok != nullptr) {
      *ok = false;
    }
    return false;
  }
  if (ok != nullptr) {
    *ok = true;
  }
  return boolean;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

void JsonAppendQuoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string EncodeExactDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  memcpy(&bits, &v, sizeof(bits));
  char buf[24];
  snprintf(buf, sizeof(buf), "x%016llx", static_cast<unsigned long long>(bits));
  return buf;
}

bool DecodeExactDouble(std::string_view s, double* out) {
  if (s.size() != 17 || s[0] != 'x') {
    return false;
  }
  uint64_t bits = 0;
  for (size_t i = 1; i < 17; ++i) {
    char c = s[i];
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  memcpy(out, &bits, sizeof(bits));
  return true;
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace mfc
