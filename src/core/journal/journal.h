// Write-ahead experiment journal: crash-safe surveys with deterministic
// resume (DESIGN.md §9).
//
// A journal is a JSONL file. Every line is one self-delimiting record
//
//   {"crc":"<16 hex>","body":{...}}\n
//
// where |crc| is the FNV-1a 64 checksum of the exact body bytes. Record
// bodies come in three types:
//
//   header — first line; binds the journal to the producing tool and a
//            caller-supplied config fingerprint (everything that shapes the
//            work except --jobs and output paths, which must not matter);
//   cohort — one per RunSurveyCohortParallel call, in call order: cohort,
//            stage, server count, crowd ceiling, seed, the pid base the
//            merged trace assigns this cohort's sites, and the shard
//            identity + seed-derivation mode (DESIGN.md §12);
//   site   — one per completed site experiment: cohort ordinal, site index,
//            seed, stage, merged-trace pid, the full ExperimentResult, and
//            (when collected) the site's private trace spans and metrics
//            registry, all encoded with exact bit-pattern doubles;
//   quarantine — written by the shard supervisor (DESIGN.md §14) after a
//            site crashes its worker repeatedly: cohort ordinal, site index,
//            consecutive crash count, and the crash signature. A quarantined
//            site is skipped on resume (its slot stays a default
//            ExperimentResult, excluded from the breakdown) instead of
//            wedging the shard forever.
//
// Because each site experiment is a pure function of (instance, config,
// seed) and the telemetry fold walks sites in index order, replaying the
// journaled prefix and executing only the remainder reproduces an
// uninterrupted run byte for byte, for any kill point and any --jobs value.
//
// Corruption recovery: loading stops at the first record that fails to
// parse, fails its checksum, or is internally inconsistent; that record and
// everything after it are dropped (with a warning) and the file is truncated
// back to the valid prefix before appending resumes. A header that does not
// match the current tool + fingerprint is a hard error — a journal is never
// silently reused for a different run.
#ifndef MFC_SRC_CORE_JOURNAL_JOURNAL_H_
#define MFC_SRC_CORE_JOURNAL_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/journal/json.h"
#include "src/core/population.h"
#include "src/core/types.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace mfc {

inline constexpr int kJournalVersion = 1;

struct JournalCohortRecord {
  size_t ordinal = 0;
  Cohort cohort = Cohort::kRank1To1K;
  StageKind stage = StageKind::kBase;
  size_t servers = 0;  // global site count (all shards together)
  size_t max_crowd = 0;
  uint64_t seed = 0;
  uint64_t pid_base = 0;  // merged-trace pid of this cohort's site 0
  // Shard identity (DESIGN.md §12): this journal holds global site indices
  // i with i % shards == shard_index. Pre-PR-8 journals carry no shard keys
  // and decode as an unsharded legacy-seed run (shards=1, legacy_seeds=true),
  // so they resume only under --legacy-seeds — never silently reseeded.
  size_t shards = 1;
  size_t shard_index = 0;
  bool legacy_seeds = false;
};

struct JournalSiteRecord {
  size_t cohort_ordinal = 0;
  size_t site_index = 0;
  uint64_t seed = 0;
  StageKind stage = StageKind::kBase;
  uint64_t pid = 0;  // pid this site's spans take in the merged trace
  ExperimentResult result;
  bool has_trace = false;
  bool has_metrics = false;
  std::vector<TraceSpan> trace_spans;
  MetricsRegistry metrics;
};

// A poisoned-site quarantine decision (DESIGN.md §14): appended by the
// supervisor to a dead worker's journal, honored by the worker on its next
// --resume. |signature| is the human-readable exit description of the crash
// being blamed (e.g. "signal 6 (Aborted)").
struct JournalQuarantineRecord {
  size_t cohort_ordinal = 0;
  size_t site_index = 0;
  size_t crashes = 0;  // consecutive worker crashes blamed on this site
  std::string signature;
};

// Record-body codecs, exposed for tests and tools. Encoders emit compact
// single-line JSON; decoders reject structurally invalid input.
std::string EncodeExperimentResult(const ExperimentResult& result);
bool DecodeExperimentResult(const JsonValue& value, ExperimentResult* out);
std::string EncodeTraceSpans(const std::vector<TraceSpan>& spans);
bool DecodeTraceSpans(const JsonValue& value, std::vector<TraceSpan>* out);
std::string EncodeMetrics(const MetricsRegistry& metrics);
bool DecodeMetrics(const JsonValue& value, MetricsRegistry* out);
std::string EncodeSiteRecord(const JournalSiteRecord& record);
std::string EncodeQuarantineRecord(const JournalQuarantineRecord& record);

// Frames |body| as one journal line with its checksum.
std::string FrameJournalRecord(const std::string& body);

// Appends a quarantine record to the journal at |path| without opening it for
// replay. Used by the supervisor on a journal whose writer process is dead:
// any torn tail record is truncated first (exactly as Open would), so the
// appended record lands on the valid prefix. A quarantine for a site the
// journal already executed — or already quarantined — is a silent no-op.
// Returns false and fills |error| when the file is not a valid journal or
// the write fails.
bool AppendQuarantineRecord(const std::string& path, const JournalQuarantineRecord& record,
                            std::string* error);

// One survey run's journal: loaded state (for replay) + append handle.
// Thread-safety: AppendSite may be called from ParallelRunner workers; all
// read accessors only touch state that is immutable after Open.
class SurveyJournal {
 public:
  // Opens |path|, creating it (with a header) when absent or empty. An
  // existing journal must carry a matching tool + fingerprint header and —
  // unless |resume| — no records beyond the header. A corrupt tail is
  // dropped with a note in Warning() and the file truncated to the valid
  // prefix. Returns null and fills |error| on any hard failure.
  static std::unique_ptr<SurveyJournal> Open(const std::string& path, const std::string& tool,
                                             const std::string& fingerprint, bool resume,
                                             std::string* error);
  ~SurveyJournal();

  SurveyJournal(const SurveyJournal&) = delete;
  SurveyJournal& operator=(const SurveyJournal&) = delete;

  const std::string& Path() const { return path_; }
  // Non-empty when a corrupt suffix was dropped at open.
  const std::string& Warning() const { return warning_; }
  size_t RecordsDropped() const { return records_dropped_; }
  // True when the journal already held site records at open (a resume).
  bool HasReplayableSites() const { return !sites_.empty(); }

  // Declares the next cohort run (cohorts are strictly sequential). If the
  // journal already holds a cohort record at this ordinal its parameters
  // must match exactly; otherwise a new record is appended. Returns false
  // and fills |error| on a mismatch — the caller must treat that as a
  // config error, never run against the journal anyway. |shards| /
  // |shard_index| / |legacy_seeds| bind the journal to one shard of a
  // (possibly sharded) run; the defaults describe a plain unsharded run
  // with mixed (collision-free) seeds.
  bool BeginCohort(Cohort cohort, StageKind stage, size_t servers, size_t max_crowd,
                   uint64_t seed, uint64_t pid_base, std::string* error, size_t shards = 1,
                   size_t shard_index = 0, bool legacy_seeds = false);

  size_t CurrentOrdinal() const { return current_ordinal_; }

  // Replay record for site |index| of the current cohort, or null if that
  // site still has to execute.
  const JournalSiteRecord* Replayed(size_t index) const;
  // Arbitrary lookup (single-experiment tools, tests).
  const JournalSiteRecord* SiteAt(size_t ordinal, size_t index) const;

  // Quarantine record for site |index| of the current cohort, or null when
  // the site is not quarantined. Quarantined sites are skipped by the survey
  // loop: never executed, never journaled as site records.
  const JournalQuarantineRecord* Quarantined(size_t index) const;
  const JournalQuarantineRecord* QuarantineAt(size_t ordinal, size_t index) const;
  // All quarantine records, in journal order.
  const std::vector<JournalQuarantineRecord>& Quarantines() const { return quarantines_; }

  const std::vector<JournalCohortRecord>& Cohorts() const { return cohorts_; }

  // Appends one completed site experiment and fsyncs — after this returns
  // the record survives process death. Thread-safe.
  void AppendSite(const JournalSiteRecord& record);

  // Flushes + fsyncs the underlying file (records are already synced per
  // append; this is for paranoia at shutdown).
  void Sync();

  // Run-audit counters (exposed in --json): sites replayed from the journal
  // vs. executed live this run.
  std::atomic<size_t> resumed_sites{0};
  std::atomic<size_t> executed_sites{0};
  // Set by the survey when a graceful shutdown left sites unexecuted.
  std::atomic<bool> interrupted{false};

 private:
  SurveyJournal() = default;

  void AppendFrameLocked(const std::string& body);

  std::string path_;
  FILE* file_ = nullptr;
  std::mutex mu_;
  std::string warning_;
  size_t records_dropped_ = 0;
  std::vector<JournalCohortRecord> cohorts_;
  // Immutable after Open: (ordinal, index) -> replay record.
  std::map<std::pair<size_t, size_t>, JournalSiteRecord> sites_;
  // Immutable after Open, in journal order (plus a lookup map).
  std::vector<JournalQuarantineRecord> quarantines_;
  std::map<std::pair<size_t, size_t>, size_t> quarantine_index_;
  size_t current_ordinal_ = 0;
  size_t begun_cohorts_ = 0;
};

// Read-only parse of one journal file for tools (shard merge, inspectors):
// never opens for append, never truncates. A corrupt suffix is dropped from
// the parsed view with a note in |warning|; a missing/invalid header is a
// hard error.
struct JournalFileData {
  std::string tool;
  std::string fingerprint;
  std::vector<JournalCohortRecord> cohorts;
  std::map<std::pair<size_t, size_t>, JournalSiteRecord> sites;
  std::vector<JournalQuarantineRecord> quarantines;
  std::string warning;
  size_t records_dropped = 0;
};
bool ReadJournalFile(const std::string& path, JournalFileData* out, std::string* error);

}  // namespace mfc

#endif  // MFC_SRC_CORE_JOURNAL_JOURNAL_H_
