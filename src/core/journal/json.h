// Minimal JSON support for the experiment journal (src/core/journal): a
// strict recursive-descent parser into a value tree, writer helpers, an
// exact (bit-pattern) double encoding, and the journal's record checksum.
//
// This is deliberately not a general JSON library — it implements exactly
// what the journal's own records need: UTF-8 passthrough strings with the
// escapes our writer emits, integer and plain-double numbers, arrays and
// objects. Doubles that must round-trip exactly (simulated times, metric
// values) never travel as JSON numbers; they are encoded as "x%016x" bit
// patterns via EncodeExactDouble so a journal replay folds bit-identically.
#ifndef MFC_SRC_CORE_JOURNAL_JSON_H_
#define MFC_SRC_CORE_JOURNAL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfc {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  // For kNumber: the raw token (so 64-bit integers survive); for kString:
  // the decoded payload.
  std::string scalar;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject, file order

  // Object field lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  // Numeric accessors parse the raw token; |ok| (optional) reports failure.
  uint64_t U64(bool* ok = nullptr) const;
  double Double(bool* ok = nullptr) const;
  bool Bool(bool* ok = nullptr) const;
};

// Parses exactly one JSON document (no trailing garbage). Returns false and
// fills |error| on any syntax violation.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

// Appends |s| as a quoted, escaped JSON string.
void JsonAppendQuoted(std::string& out, std::string_view s);

// Exact round-trip double encoding: "x" + 16 lowercase hex digits of the
// IEEE-754 bit pattern.
std::string EncodeExactDouble(double v);
bool DecodeExactDouble(std::string_view s, double* out);

// FNV-1a 64-bit hash — the journal's per-record checksum.
uint64_t Fnv1a64(std::string_view bytes);

}  // namespace mfc

#endif  // MFC_SRC_CORE_JOURNAL_JSON_H_
