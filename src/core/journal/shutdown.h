// Process-wide graceful-shutdown flag for journaled runs.
//
// InstallShutdownHandlers() routes SIGINT/SIGTERM to a flag that long-running
// survey loops poll between site experiments: in-flight experiments drain to
// completion (and reach the journal), no new ones start, and the caller emits
// a partial report with a resume hint. A second signal force-exits with
// status 130 — the escape hatch when draining itself wedges.
//
// Handlers are only installed when a journal is active; without one the
// default signal disposition (immediate death) is untouched, keeping
// non-journaled runs bit-identical in behavior as well as output.
#ifndef MFC_SRC_CORE_JOURNAL_SHUTDOWN_H_
#define MFC_SRC_CORE_JOURNAL_SHUTDOWN_H_

namespace mfc {

// Idempotent; registers SIGINT and SIGTERM handlers.
void InstallShutdownHandlers();

// True once a shutdown signal arrived (or RequestShutdown ran).
bool ShutdownRequested();

// Programmatic trigger, equivalent to receiving one signal (tests, embedders).
void RequestShutdown();

// Clears the flag so a later run in the same process starts fresh (tests).
void ClearShutdownRequest();

}  // namespace mfc

#endif  // MFC_SRC_CORE_JOURNAL_SHUTDOWN_H_
