#include "src/core/journal/shutdown.h"

#include <unistd.h>

#include <atomic>
#include <csignal>

namespace mfc {
namespace {

std::atomic<int> g_shutdown_requested{0};

extern "C" void HandleShutdownSignal(int /*sig*/) {
  // Second signal: the user is done waiting for the drain. _exit is
  // async-signal-safe; 130 is the conventional fatal-SIGINT status.
  if (g_shutdown_requested.exchange(1, std::memory_order_relaxed) != 0) {
    _exit(130);
  }
}

}  // namespace

void InstallShutdownHandlers() {
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed) != 0;
}

void RequestShutdown() { g_shutdown_requested.store(1, std::memory_order_relaxed); }

void ClearShutdownRequest() { g_shutdown_requested.store(0, std::memory_order_relaxed); }

}  // namespace mfc
