#include "src/core/journal/journal.h"

#include <unistd.h>

#include <cstring>
#include <utility>

namespace mfc {
namespace {

constexpr char kMagic[] = "mfc-journal";

// ---- encode helpers ------------------------------------------------------

void AppendU64(std::string& out, uint64_t v) { out += std::to_string(v); }

void AppendKeyU64(std::string& out, const char* key, uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  AppendU64(out, v);
}

void AppendKeyBool(std::string& out, const char* key, bool v) {
  out += '"';
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

void AppendKeyString(std::string& out, const char* key, std::string_view v) {
  out += '"';
  out += key;
  out += "\":";
  JsonAppendQuoted(out, v);
}

void AppendKeyExact(std::string& out, const char* key, double v) {
  out += '"';
  out += key;
  out += "\":\"";
  out += EncodeExactDouble(v);
  out += '"';
}

// ---- decode helpers ------------------------------------------------------

bool GetU64(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return false;
  }
  bool ok = false;
  *out = v->U64(&ok);
  return ok;
}

bool GetSize(const JsonValue& obj, const char* key, size_t* out) {
  uint64_t v = 0;
  if (!GetU64(obj, key, &v)) {
    return false;
  }
  *out = static_cast<size_t>(v);
  return true;
}

bool GetBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return false;
  }
  bool ok = false;
  *out = v->Bool(&ok);
  return ok;
}

bool GetString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsString()) {
    return false;
  }
  *out = v->scalar;
  return true;
}

bool GetExact(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->IsString()) {
    return false;
  }
  return DecodeExactDouble(v->scalar, out);
}

bool DecodeExactItem(const JsonValue& v, double* out) {
  return v.IsString() && DecodeExactDouble(v.scalar, out);
}

}  // namespace

// ---- ExperimentResult codec ----------------------------------------------

std::string EncodeExperimentResult(const ExperimentResult& result) {
  std::string out = "{";
  AppendKeyBool(out, "aborted", result.aborted);
  out += ',';
  AppendKeyString(out, "abort_reason", result.abort_reason);
  out += ',';
  AppendKeyU64(out, "registered_clients", result.registered_clients);
  out += ",\"stages\":[";
  for (size_t s = 0; s < result.stages.size(); ++s) {
    const StageResult& stage = result.stages[s];
    if (s > 0) {
      out += ',';
    }
    out += '{';
    AppendKeyU64(out, "kind", static_cast<uint64_t>(stage.kind));
    out += ',';
    AppendKeyBool(out, "stopped", stage.stopped);
    out += ',';
    AppendKeyU64(out, "stop_at", stage.stopping_crowd_size);
    out += ',';
    AppendKeyU64(out, "max_tested", stage.max_crowd_tested);
    out += ',';
    AppendKeyU64(out, "end_reason", static_cast<uint64_t>(stage.end_reason));
    out += ',';
    AppendKeyString(out, "end_detail", stage.end_detail);
    out += ',';
    AppendKeyU64(out, "total_requests", stage.total_requests);
    out += ',';
    AppendKeyExact(out, "started", stage.started);
    out += ',';
    AppendKeyExact(out, "finished", stage.finished);
    out += ",\"epochs\":[";
    for (size_t e = 0; e < stage.epochs.size(); ++e) {
      const EpochResult& epoch = stage.epochs[e];
      if (e > 0) {
        out += ',';
      }
      out += '{';
      AppendKeyU64(out, "crowd", epoch.crowd_size);
      out += ',';
      AppendKeyU64(out, "received", epoch.samples_received);
      out += ',';
      AppendKeyU64(out, "expected", epoch.samples_expected);
      out += ',';
      AppendKeyExact(out, "metric", epoch.metric);
      out += ',';
      AppendKeyBool(out, "exceeded", epoch.exceeded_threshold);
      out += ',';
      AppendKeyBool(out, "check", epoch.check_phase);
      out += ',';
      AppendKeyBool(out, "requeued", epoch.requeued);
      out += ",\"samples\":[";
      for (size_t i = 0; i < epoch.samples.size(); ++i) {
        const RequestSample& sample = epoch.samples[i];
        if (i > 0) {
          out += ',';
        }
        out += '[';
        AppendU64(out, sample.client_id);
        out += ',';
        out += std::to_string(static_cast<int>(sample.code));
        out += ",\"";
        out += EncodeExactDouble(sample.bytes);
        out += "\",\"";
        out += EncodeExactDouble(sample.response_time);
        out += "\",\"";
        out += EncodeExactDouble(sample.normalized);
        out += "\",";
        out += sample.timed_out ? "1" : "0";
        out += ']';
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

bool DecodeExperimentResult(const JsonValue& value, ExperimentResult* out) {
  *out = ExperimentResult{};
  if (!GetBool(value, "aborted", &out->aborted) ||
      !GetString(value, "abort_reason", &out->abort_reason) ||
      !GetSize(value, "registered_clients", &out->registered_clients)) {
    return false;
  }
  const JsonValue* stages = value.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return false;
  }
  out->stages.reserve(stages->items.size());
  for (const JsonValue& sv : stages->items) {
    StageResult stage;
    uint64_t kind = 0;
    uint64_t end_reason = 0;
    if (!GetU64(sv, "kind", &kind) || kind > 2 || !GetBool(sv, "stopped", &stage.stopped) ||
        !GetSize(sv, "stop_at", &stage.stopping_crowd_size) ||
        !GetSize(sv, "max_tested", &stage.max_crowd_tested) ||
        !GetU64(sv, "end_reason", &end_reason) || end_reason > 2 ||
        !GetString(sv, "end_detail", &stage.end_detail) ||
        !GetU64(sv, "total_requests", &stage.total_requests) ||
        !GetExact(sv, "started", &stage.started) ||
        !GetExact(sv, "finished", &stage.finished)) {
      return false;
    }
    stage.kind = static_cast<StageKind>(kind);
    stage.end_reason = static_cast<StageEndReason>(end_reason);
    const JsonValue* epochs = sv.Find("epochs");
    if (epochs == nullptr || epochs->kind != JsonValue::Kind::kArray) {
      return false;
    }
    stage.epochs.reserve(epochs->items.size());
    for (const JsonValue& ev : epochs->items) {
      EpochResult epoch;
      if (!GetSize(ev, "crowd", &epoch.crowd_size) ||
          !GetSize(ev, "received", &epoch.samples_received) ||
          !GetSize(ev, "expected", &epoch.samples_expected) ||
          !GetExact(ev, "metric", &epoch.metric) ||
          !GetBool(ev, "exceeded", &epoch.exceeded_threshold) ||
          !GetBool(ev, "check", &epoch.check_phase) ||
          !GetBool(ev, "requeued", &epoch.requeued)) {
        return false;
      }
      const JsonValue* samples = ev.Find("samples");
      if (samples == nullptr || samples->kind != JsonValue::Kind::kArray) {
        return false;
      }
      epoch.samples.reserve(samples->items.size());
      for (const JsonValue& rv : samples->items) {
        if (rv.kind != JsonValue::Kind::kArray || rv.items.size() != 6) {
          return false;
        }
        RequestSample sample;
        bool ok = false;
        sample.client_id = static_cast<size_t>(rv.items[0].U64(&ok));
        if (!ok) {
          return false;
        }
        double code = rv.items[1].Double(&ok);
        if (!ok) {
          return false;
        }
        sample.code = static_cast<HttpStatus>(static_cast<int>(code));
        if (!DecodeExactItem(rv.items[2], &sample.bytes) ||
            !DecodeExactItem(rv.items[3], &sample.response_time) ||
            !DecodeExactItem(rv.items[4], &sample.normalized)) {
          return false;
        }
        uint64_t timed_out = rv.items[5].U64(&ok);
        if (!ok || timed_out > 1) {
          return false;
        }
        sample.timed_out = timed_out == 1;
        epoch.samples.push_back(std::move(sample));
      }
      stage.epochs.push_back(std::move(epoch));
    }
    out->stages.push_back(std::move(stage));
  }
  return true;
}

// ---- trace codec ---------------------------------------------------------

std::string EncodeTraceSpans(const std::vector<TraceSpan>& spans) {
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i > 0) {
      out += ',';
    }
    out += '[';
    AppendU64(out, span.id);
    out += ',';
    AppendU64(out, span.parent);
    out += ',';
    JsonAppendQuoted(out, span.name);
    out += ',';
    JsonAppendQuoted(out, span.category);
    out += ",\"";
    out += EncodeExactDouble(span.start);
    out += "\",\"";
    out += EncodeExactDouble(span.end);
    out += "\",";
    out += span.open ? "1" : "0";
    out += ',';
    AppendU64(out, span.pid);
    out += ',';
    AppendU64(out, span.track);
    out += ",[";
    for (size_t a = 0; a < span.attrs.size(); ++a) {
      if (a > 0) {
        out += ',';
      }
      out += '[';
      JsonAppendQuoted(out, span.attrs[a].first);
      out += ',';
      JsonAppendQuoted(out, span.attrs[a].second);
      out += ']';
    }
    out += "]]";
  }
  out += ']';
  return out;
}

bool DecodeTraceSpans(const JsonValue& value, std::vector<TraceSpan>* out) {
  out->clear();
  if (value.kind != JsonValue::Kind::kArray) {
    return false;
  }
  out->reserve(value.items.size());
  for (const JsonValue& sv : value.items) {
    if (sv.kind != JsonValue::Kind::kArray || sv.items.size() != 10) {
      return false;
    }
    TraceSpan span;
    bool ok = false;
    span.id = sv.items[0].U64(&ok);
    if (!ok) {
      return false;
    }
    span.parent = sv.items[1].U64(&ok);
    if (!ok) {
      return false;
    }
    if (!sv.items[2].IsString() || !sv.items[3].IsString()) {
      return false;
    }
    span.name = sv.items[2].scalar;
    span.category = sv.items[3].scalar;
    if (!DecodeExactItem(sv.items[4], &span.start) ||
        !DecodeExactItem(sv.items[5], &span.end)) {
      return false;
    }
    uint64_t open = sv.items[6].U64(&ok);
    if (!ok || open > 1) {
      return false;
    }
    span.open = open == 1;
    span.pid = sv.items[7].U64(&ok);
    if (!ok) {
      return false;
    }
    span.track = sv.items[8].U64(&ok);
    if (!ok) {
      return false;
    }
    const JsonValue& attrs = sv.items[9];
    if (attrs.kind != JsonValue::Kind::kArray) {
      return false;
    }
    for (const JsonValue& av : attrs.items) {
      if (av.kind != JsonValue::Kind::kArray || av.items.size() != 2 ||
          !av.items[0].IsString() || !av.items[1].IsString()) {
        return false;
      }
      span.attrs.emplace_back(av.items[0].scalar, av.items[1].scalar);
    }
    out->push_back(std::move(span));
  }
  return true;
}

// ---- metrics codec -------------------------------------------------------

std::string EncodeMetrics(const MetricsRegistry& metrics) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [name, value] : metrics.Counters()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '[';
    JsonAppendQuoted(out, name);
    out += ",\"";
    out += EncodeExactDouble(value);
    out += "\"]";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [name, value] : metrics.Gauges()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '[';
    JsonAppendQuoted(out, name);
    out += ",\"";
    out += EncodeExactDouble(value);
    out += "\"]";
  }
  out += "],\"summaries\":[";
  first = true;
  for (const auto& [name, stats] : metrics.Summaries()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '[';
    JsonAppendQuoted(out, name);
    out += ',';
    AppendU64(out, stats.Count());
    out += ",\"";
    out += EncodeExactDouble(stats.Mean());
    out += "\",\"";
    out += EncodeExactDouble(stats.M2());
    out += "\",\"";
    out += EncodeExactDouble(stats.MinValue());
    out += "\",\"";
    out += EncodeExactDouble(stats.MaxValue());
    out += "\"]";
  }
  out += "],\"hists\":[";
  first = true;
  for (const auto& [name, hist] : metrics.Histograms()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '[';
    JsonAppendQuoted(out, name);
    out += ",[";
    const std::vector<double>& edges = hist.Edges();
    for (size_t i = 0; i < edges.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += '"';
      out += EncodeExactDouble(edges[i]);
      out += '"';
    }
    out += "],[";
    for (size_t i = 0; i < hist.BucketCount(); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendU64(out, hist.BucketValue(i));
    }
    out += "]]";
  }
  out += "]}";
  return out;
}

bool DecodeMetrics(const JsonValue& value, MetricsRegistry* out) {
  *out = MetricsRegistry{};
  const JsonValue* counters = value.Find("counters");
  const JsonValue* gauges = value.Find("gauges");
  const JsonValue* summaries = value.Find("summaries");
  const JsonValue* hists = value.Find("hists");
  if (counters == nullptr || counters->kind != JsonValue::Kind::kArray || gauges == nullptr ||
      gauges->kind != JsonValue::Kind::kArray || summaries == nullptr ||
      summaries->kind != JsonValue::Kind::kArray || hists == nullptr ||
      hists->kind != JsonValue::Kind::kArray) {
    return false;
  }
  for (const JsonValue& cv : counters->items) {
    double v = 0.0;
    if (cv.kind != JsonValue::Kind::kArray || cv.items.size() != 2 ||
        !cv.items[0].IsString() || !DecodeExactItem(cv.items[1], &v)) {
      return false;
    }
    out->Add(cv.items[0].scalar, v);
  }
  for (const JsonValue& gv : gauges->items) {
    double v = 0.0;
    if (gv.kind != JsonValue::Kind::kArray || gv.items.size() != 2 ||
        !gv.items[0].IsString() || !DecodeExactItem(gv.items[1], &v)) {
      return false;
    }
    out->Set(gv.items[0].scalar, v);
  }
  for (const JsonValue& sv : summaries->items) {
    if (sv.kind != JsonValue::Kind::kArray || sv.items.size() != 6 || !sv.items[0].IsString()) {
      return false;
    }
    bool ok = false;
    uint64_t count = sv.items[1].U64(&ok);
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    if (!ok || !DecodeExactItem(sv.items[2], &mean) || !DecodeExactItem(sv.items[3], &m2) ||
        !DecodeExactItem(sv.items[4], &min) || !DecodeExactItem(sv.items[5], &max)) {
      return false;
    }
    out->RestoreSummary(sv.items[0].scalar,
                        RunningStats::FromParts(static_cast<size_t>(count), mean, m2, min, max));
  }
  for (const JsonValue& hv : hists->items) {
    if (hv.kind != JsonValue::Kind::kArray || hv.items.size() != 3 || !hv.items[0].IsString() ||
        hv.items[1].kind != JsonValue::Kind::kArray ||
        hv.items[2].kind != JsonValue::Kind::kArray) {
      return false;
    }
    std::vector<double> edges;
    edges.reserve(hv.items[1].items.size());
    for (const JsonValue& ev : hv.items[1].items) {
      double e = 0.0;
      if (!DecodeExactItem(ev, &e)) {
        return false;
      }
      edges.push_back(e);
    }
    std::vector<size_t> counts;
    counts.reserve(hv.items[2].items.size());
    for (const JsonValue& cv : hv.items[2].items) {
      bool ok = false;
      counts.push_back(static_cast<size_t>(cv.U64(&ok)));
      if (!ok) {
        return false;
      }
    }
    if (counts.size() != edges.size() + 1) {
      return false;
    }
    out->RestoreHist(hv.items[0].scalar, Histogram::FromParts(std::move(edges), std::move(counts)));
  }
  return true;
}

// ---- record framing ------------------------------------------------------

std::string EncodeSiteRecord(const JournalSiteRecord& record) {
  std::string body = "{\"type\":\"site\",";
  AppendKeyU64(body, "cohort", record.cohort_ordinal);
  body += ',';
  AppendKeyU64(body, "index", record.site_index);
  body += ',';
  AppendKeyU64(body, "seed", record.seed);
  body += ',';
  AppendKeyU64(body, "stage", static_cast<uint64_t>(record.stage));
  body += ',';
  AppendKeyU64(body, "pid", record.pid);
  body += ",\"result\":";
  body += EncodeExperimentResult(record.result);
  if (record.has_trace) {
    body += ",\"trace\":";
    body += EncodeTraceSpans(record.trace_spans);
  }
  if (record.has_metrics) {
    body += ",\"metrics\":";
    body += EncodeMetrics(record.metrics);
  }
  body += '}';
  return body;
}

std::string EncodeQuarantineRecord(const JournalQuarantineRecord& record) {
  std::string body = "{\"type\":\"quarantine\",";
  AppendKeyU64(body, "cohort", record.cohort_ordinal);
  body += ',';
  AppendKeyU64(body, "index", record.site_index);
  body += ',';
  AppendKeyU64(body, "crashes", record.crashes);
  body += ',';
  AppendKeyString(body, "signature", record.signature);
  body += '}';
  return body;
}

std::string FrameJournalRecord(const std::string& body) {
  char crc[20];
  snprintf(crc, sizeof(crc), "%016llx", static_cast<unsigned long long>(Fnv1a64(body)));
  std::string line = "{\"crc\":\"";
  line += crc;
  line += "\",\"body\":";
  line += body;
  line += "}\n";
  return line;
}

// ---- SurveyJournal -------------------------------------------------------

namespace {

// Splits a framed record line (without the trailing newline) into checksum +
// body, verifying the frame layout the writer emits. Returns false on any
// deviation.
bool UnframeLine(std::string_view line, std::string_view* body) {
  // {"crc":"<16 hex>","body":<body>}
  constexpr std::string_view kPrefix = "{\"crc\":\"";
  constexpr std::string_view kMid = "\",\"body\":";
  constexpr size_t kHex = 16;
  if (line.size() < kPrefix.size() + kHex + kMid.size() + 2 ||
      line.substr(0, kPrefix.size()) != kPrefix ||
      line.substr(kPrefix.size() + kHex, kMid.size()) != kMid || line.back() != '}') {
    return false;
  }
  std::string_view hex = line.substr(kPrefix.size(), kHex);
  uint64_t crc = 0;
  for (char c : hex) {
    crc <<= 4;
    if (c >= '0' && c <= '9') {
      crc |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      crc |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  size_t body_start = kPrefix.size() + kHex + kMid.size();
  *body = line.substr(body_start, line.size() - body_start - 1);
  return Fnv1a64(*body) == crc;
}

bool DecodeCohortRecord(const JsonValue& body, JournalCohortRecord* out) {
  uint64_t cohort = 0;
  uint64_t stage = 0;
  if (!GetSize(body, "ordinal", &out->ordinal) || !GetU64(body, "cohort", &cohort) ||
      cohort > static_cast<uint64_t>(Cohort::kLongTail) || !GetU64(body, "stage", &stage) ||
      stage > 2 || !GetSize(body, "servers", &out->servers) ||
      !GetSize(body, "max_crowd", &out->max_crowd) || !GetU64(body, "seed", &out->seed) ||
      !GetU64(body, "pid_base", &out->pid_base)) {
    return false;
  }
  out->cohort = static_cast<Cohort>(cohort);
  out->stage = static_cast<StageKind>(stage);
  if (body.Find("shards") != nullptr) {
    if (!GetSize(body, "shards", &out->shards) || out->shards == 0 ||
        !GetSize(body, "shard_index", &out->shard_index) || out->shard_index >= out->shards ||
        !GetBool(body, "legacy_seeds", &out->legacy_seeds)) {
      return false;
    }
  } else {
    // Pre-PR-8 record: unsharded, seed * 1000 + i era.
    out->shards = 1;
    out->shard_index = 0;
    out->legacy_seeds = true;
  }
  return true;
}

// The per-site seed the cohort's declared derivation implies for |index|.
uint64_t ExpectedSiteSeed(const JournalCohortRecord& cohort, size_t index) {
  if (cohort.legacy_seeds) {
    return cohort.seed * 1000 + index;
  }
  return SiteExperimentSeed(cohort.seed, cohort.cohort, index);
}

bool DecodeSiteRecord(const JsonValue& body, JournalSiteRecord* out) {
  uint64_t stage = 0;
  if (!GetSize(body, "cohort", &out->cohort_ordinal) || !GetSize(body, "index", &out->site_index) ||
      !GetU64(body, "seed", &out->seed) || !GetU64(body, "stage", &stage) || stage > 2 ||
      !GetU64(body, "pid", &out->pid)) {
    return false;
  }
  out->stage = static_cast<StageKind>(stage);
  const JsonValue* result = body.Find("result");
  if (result == nullptr || !DecodeExperimentResult(*result, &out->result)) {
    return false;
  }
  if (const JsonValue* trace = body.Find("trace")) {
    if (!DecodeTraceSpans(*trace, &out->trace_spans)) {
      return false;
    }
    out->has_trace = true;
  }
  if (const JsonValue* metrics = body.Find("metrics")) {
    if (!DecodeMetrics(*metrics, &out->metrics)) {
      return false;
    }
    out->has_metrics = true;
  }
  return true;
}

bool DecodeQuarantineRecord(const JsonValue& body, JournalQuarantineRecord* out) {
  return GetSize(body, "cohort", &out->cohort_ordinal) &&
         GetSize(body, "index", &out->site_index) && GetSize(body, "crashes", &out->crashes) &&
         out->crashes >= 1 && GetString(body, "signature", &out->signature);
}

std::string EncodeHeader(const std::string& tool, const std::string& fingerprint) {
  std::string body = "{\"type\":\"header\",";
  AppendKeyString(body, "magic", kMagic);
  body += ',';
  AppendKeyU64(body, "version", kJournalVersion);
  body += ',';
  AppendKeyString(body, "tool", tool);
  body += ',';
  AppendKeyString(body, "fingerprint", fingerprint);
  body += '}';
  return body;
}

std::string EncodeCohortRecord(const JournalCohortRecord& record) {
  std::string body = "{\"type\":\"cohort\",";
  AppendKeyU64(body, "ordinal", record.ordinal);
  body += ',';
  AppendKeyU64(body, "cohort", static_cast<uint64_t>(record.cohort));
  body += ',';
  AppendKeyU64(body, "stage", static_cast<uint64_t>(record.stage));
  body += ',';
  AppendKeyU64(body, "servers", record.servers);
  body += ',';
  AppendKeyU64(body, "max_crowd", record.max_crowd);
  body += ',';
  AppendKeyU64(body, "seed", record.seed);
  body += ',';
  AppendKeyU64(body, "pid_base", record.pid_base);
  body += ',';
  AppendKeyU64(body, "shards", record.shards);
  body += ',';
  AppendKeyU64(body, "shard_index", record.shard_index);
  body += ',';
  AppendKeyBool(body, "legacy_seeds", record.legacy_seeds);
  body += '}';
  return body;
}

// One pass over a journal's bytes, shared by SurveyJournal::Open (which then
// truncates/appends) and the read-only ReadJournalFile. |valid_end| is the
// offset just past the last fully valid record; |corrupt| names the first
// recoverable defect (drop the suffix), |hard_error| an unrecoverable one
// (not a journal at all / wrong version) — the file must then be left alone.
struct JournalScan {
  bool saw_header = false;
  std::string tool;
  std::string fingerprint;
  std::vector<JournalCohortRecord> cohorts;
  std::map<std::pair<size_t, size_t>, JournalSiteRecord> sites;
  std::vector<JournalQuarantineRecord> quarantines;
  std::map<std::pair<size_t, size_t>, size_t> quarantine_index;
  size_t valid_end = 0;
  std::string corrupt;
  std::string hard_error;
};

void ScanJournalContents(const std::string& path, const std::string& contents,
                         JournalScan* scan) {
  size_t pos = 0;
  size_t record_index = 0;
  while (pos < contents.size() && scan->corrupt.empty()) {
    size_t newline = contents.find('\n', pos);
    if (newline == std::string::npos) {
      scan->corrupt = "truncated tail record (no trailing newline)";
      break;
    }
    std::string_view line(contents.data() + pos, newline - pos);
    std::string_view body_text;
    if (!UnframeLine(line, &body_text)) {
      scan->corrupt = "record " + std::to_string(record_index) + ": bad frame or checksum";
      break;
    }
    JsonValue body;
    std::string parse_error;
    if (!ParseJson(body_text, &body, &parse_error)) {
      scan->corrupt = "record " + std::to_string(record_index) + ": " + parse_error;
      break;
    }
    std::string type;
    if (!GetString(body, "type", &type)) {
      scan->corrupt = "record " + std::to_string(record_index) + ": missing type";
      break;
    }
    if (record_index == 0) {
      // Header mismatches are hard errors, not recoverable corruption: the
      // file is either not a journal or from an incompatible writer.
      std::string magic;
      uint64_t version = 0;
      if (type != "header" || !GetString(body, "magic", &magic) || magic != kMagic ||
          !GetU64(body, "version", &version)) {
        scan->hard_error = path + ": not an mfc journal";
        return;
      }
      if (version != kJournalVersion) {
        scan->hard_error = path + ": journal version " + std::to_string(version) + " != " +
                           std::to_string(kJournalVersion);
        return;
      }
      if (!GetString(body, "tool", &scan->tool) ||
          !GetString(body, "fingerprint", &scan->fingerprint)) {
        scan->hard_error = path + ": malformed journal header";
        return;
      }
      scan->saw_header = true;
    } else if (type == "cohort") {
      JournalCohortRecord record;
      if (!DecodeCohortRecord(body, &record) || record.ordinal != scan->cohorts.size()) {
        scan->corrupt = "record " + std::to_string(record_index) + ": malformed cohort record";
        break;
      }
      scan->cohorts.push_back(record);
    } else if (type == "site") {
      JournalSiteRecord record;
      if (!DecodeSiteRecord(body, &record)) {
        scan->corrupt = "record " + std::to_string(record_index) + ": malformed site record";
        break;
      }
      // Bind the site to its cohort declaration when one exists (survey
      // journals always write the cohort record first): seed must follow the
      // cohort's declared derivation and the index must belong to its shard.
      if (record.cohort_ordinal < scan->cohorts.size()) {
        const JournalCohortRecord& cohort = scan->cohorts[record.cohort_ordinal];
        if (record.site_index >= cohort.servers || record.stage != cohort.stage ||
            record.seed != ExpectedSiteSeed(cohort, record.site_index) ||
            record.pid != cohort.pid_base + record.site_index ||
            record.site_index % cohort.shards != cohort.shard_index) {
          scan->corrupt = "record " + std::to_string(record_index) +
                          ": site record inconsistent with its cohort";
          break;
        }
      }
      auto key = std::make_pair(record.cohort_ordinal, record.site_index);
      if (scan->quarantine_index.count(key) != 0) {
        // A quarantined site must never execute: a site record after the
        // quarantine means two writers disagreed about this journal.
        scan->corrupt = "record " + std::to_string(record_index) +
                        ": site record for a quarantined site";
        break;
      }
      if (!scan->sites.emplace(key, std::move(record)).second) {
        scan->corrupt = "record " + std::to_string(record_index) + ": duplicate site record";
        break;
      }
    } else if (type == "quarantine") {
      JournalQuarantineRecord record;
      if (!DecodeQuarantineRecord(body, &record)) {
        scan->corrupt =
            "record " + std::to_string(record_index) + ": malformed quarantine record";
        break;
      }
      if (record.cohort_ordinal < scan->cohorts.size()) {
        const JournalCohortRecord& cohort = scan->cohorts[record.cohort_ordinal];
        if (record.site_index >= cohort.servers ||
            record.site_index % cohort.shards != cohort.shard_index) {
          scan->corrupt = "record " + std::to_string(record_index) +
                          ": quarantine record inconsistent with its cohort";
          break;
        }
      }
      auto key = std::make_pair(record.cohort_ordinal, record.site_index);
      if (scan->sites.count(key) != 0) {
        scan->corrupt = "record " + std::to_string(record_index) +
                        ": quarantine for an already-executed site";
        break;
      }
      if (!scan->quarantine_index.emplace(key, scan->quarantines.size()).second) {
        scan->corrupt =
            "record " + std::to_string(record_index) + ": duplicate quarantine record";
        break;
      }
      scan->quarantines.push_back(std::move(record));
    } else {
      scan->corrupt = "record " + std::to_string(record_index) + ": unknown type \"" + type +
                      "\"";
      break;
    }
    pos = newline + 1;
    scan->valid_end = pos;
    ++record_index;
  }
}

// Counts the records in the invalid suffix (for the recovery warning).
size_t CountDroppedRecords(const std::string& contents, size_t valid_end) {
  size_t dropped = 1;
  for (size_t i = valid_end; i < contents.size(); ++i) {
    if (contents[i] == '\n' && i + 1 < contents.size()) {
      ++dropped;
    }
  }
  return dropped;
}

}  // namespace

std::unique_ptr<SurveyJournal> SurveyJournal::Open(const std::string& path,
                                                   const std::string& tool,
                                                   const std::string& fingerprint, bool resume,
                                                   std::string* error) {
  auto fail = [error](const std::string& message) -> std::unique_ptr<SurveyJournal> {
    if (error != nullptr) {
      *error = message;
    }
    return nullptr;
  };

  FILE* file = fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) {
    return fail("cannot open journal " + path);
  }

  // Slurp the existing contents.
  std::string contents;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  if (ferror(file)) {
    fclose(file);
    return fail("cannot read journal " + path);
  }

  std::unique_ptr<SurveyJournal> journal(new SurveyJournal());
  journal->path_ = path;
  journal->file_ = file;

  JournalScan scan;
  ScanJournalContents(path, contents, &scan);
  if (!scan.hard_error.empty()) {
    return fail(scan.hard_error);
  }
  if (scan.saw_header && (scan.tool != tool || scan.fingerprint != fingerprint)) {
    // The journal belongs to a different run and must never be reused.
    return fail(path + ": journal belongs to a different run (tool \"" + scan.tool +
                "\", fingerprint \"" + scan.fingerprint + "\"; this run is tool \"" + tool +
                "\", fingerprint \"" + fingerprint + "\")");
  }
  journal->cohorts_ = std::move(scan.cohorts);
  journal->sites_ = std::move(scan.sites);
  journal->quarantines_ = std::move(scan.quarantines);
  journal->quarantine_index_ = std::move(scan.quarantine_index);

  if (!scan.corrupt.empty()) {
    // Recover by replaying only the valid prefix: count what we drop, warn,
    // and truncate so appended records continue a clean stream.
    journal->records_dropped_ = CountDroppedRecords(contents, scan.valid_end);
    journal->warning_ = "journal corruption (" + scan.corrupt + "): dropped " +
                        std::to_string(journal->records_dropped_) +
                        " record(s) after the valid prefix";
  }

  if (!scan.saw_header && !contents.empty()) {
    // No valid header record at all: this is some other file, not a corrupt
    // journal — never truncate or overwrite it.
    return fail(path + ": not an mfc journal (no valid header record)");
  }

  if (!resume &&
      (!journal->cohorts_.empty() || !journal->sites_.empty() || !journal->quarantines_.empty())) {
    return fail(path + ": journal already contains experiment records; pass --resume to replay "
                       "them or remove the file to start over");
  }

  if (scan.valid_end < contents.size()) {
    if (ftruncate(fileno(file), static_cast<off_t>(scan.valid_end)) != 0) {
      return fail("cannot truncate corrupt journal suffix in " + path);
    }
  }
  if (fseek(file, static_cast<long>(scan.valid_end), SEEK_SET) != 0) {
    return fail("cannot seek journal " + path);
  }

  if (!scan.saw_header) {
    // Fresh journal: write the header now.
    journal->AppendFrameLocked(EncodeHeader(tool, fingerprint));
  }
  return journal;
}

bool ReadJournalFile(const std::string& path, JournalFileData* out, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  FILE* file = fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return fail("cannot open journal " + path);
  }
  std::string contents;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  bool read_error = ferror(file) != 0;
  fclose(file);
  if (read_error) {
    return fail("cannot read journal " + path);
  }

  JournalScan scan;
  ScanJournalContents(path, contents, &scan);
  if (!scan.hard_error.empty()) {
    return fail(scan.hard_error);
  }
  if (!scan.saw_header) {
    return fail(path + ": not an mfc journal (no valid header record)");
  }
  *out = JournalFileData{};
  out->tool = std::move(scan.tool);
  out->fingerprint = std::move(scan.fingerprint);
  out->cohorts = std::move(scan.cohorts);
  out->sites = std::move(scan.sites);
  out->quarantines = std::move(scan.quarantines);
  if (!scan.corrupt.empty()) {
    out->records_dropped = CountDroppedRecords(contents, scan.valid_end);
    out->warning = "journal corruption (" + scan.corrupt + "): ignored " +
                   std::to_string(out->records_dropped) + " record(s) after the valid prefix";
  }
  return true;
}

SurveyJournal::~SurveyJournal() {
  if (file_ != nullptr) {
    fflush(file_);
    fsync(fileno(file_));
    fclose(file_);
  }
}

void SurveyJournal::AppendFrameLocked(const std::string& body) {
  std::string line = FrameJournalRecord(body);
  fwrite(line.data(), 1, line.size(), file_);
  fflush(file_);
  fsync(fileno(file_));
}

bool SurveyJournal::BeginCohort(Cohort cohort, StageKind stage, size_t servers, size_t max_crowd,
                                uint64_t seed, uint64_t pid_base, std::string* error,
                                size_t shards, size_t shard_index, bool legacy_seeds) {
  size_t ordinal = begun_cohorts_++;
  current_ordinal_ = ordinal;
  if (ordinal < cohorts_.size()) {
    const JournalCohortRecord& rec = cohorts_[ordinal];
    if (rec.cohort != cohort || rec.stage != stage || rec.servers != servers ||
        rec.max_crowd != max_crowd || rec.seed != seed || rec.pid_base != pid_base ||
        rec.shards != shards || rec.shard_index != shard_index ||
        rec.legacy_seeds != legacy_seeds) {
      if (error != nullptr) {
        *error = "cohort " + std::to_string(ordinal) + " config mismatch: journal has " +
                 std::string(CohortName(rec.cohort)) + "/" + std::string(StageName(rec.stage)) +
                 " servers=" + std::to_string(rec.servers) +
                 " max_crowd=" + std::to_string(rec.max_crowd) +
                 " seed=" + std::to_string(rec.seed) +
                 " pid_base=" + std::to_string(rec.pid_base) +
                 " shards=" + std::to_string(rec.shards) + "/" +
                 std::to_string(rec.shard_index) +
                 " legacy_seeds=" + (rec.legacy_seeds ? "1" : "0") + ", this run wants " +
                 std::string(CohortName(cohort)) + "/" + std::string(StageName(stage)) +
                 " servers=" + std::to_string(servers) + " max_crowd=" + std::to_string(max_crowd) +
                 " seed=" + std::to_string(seed) + " pid_base=" + std::to_string(pid_base) +
                 " shards=" + std::to_string(shards) + "/" + std::to_string(shard_index) +
                 " legacy_seeds=" + (legacy_seeds ? "1" : "0");
      }
      return false;
    }
    return true;
  }
  JournalCohortRecord record;
  record.ordinal = ordinal;
  record.cohort = cohort;
  record.stage = stage;
  record.servers = servers;
  record.max_crowd = max_crowd;
  record.seed = seed;
  record.pid_base = pid_base;
  record.shards = shards;
  record.shard_index = shard_index;
  record.legacy_seeds = legacy_seeds;
  cohorts_.push_back(record);
  std::lock_guard<std::mutex> lock(mu_);
  AppendFrameLocked(EncodeCohortRecord(record));
  return true;
}

const JournalSiteRecord* SurveyJournal::Replayed(size_t index) const {
  return SiteAt(current_ordinal_, index);
}

const JournalSiteRecord* SurveyJournal::SiteAt(size_t ordinal, size_t index) const {
  auto it = sites_.find(std::make_pair(ordinal, index));
  return it == sites_.end() ? nullptr : &it->second;
}

const JournalQuarantineRecord* SurveyJournal::Quarantined(size_t index) const {
  return QuarantineAt(current_ordinal_, index);
}

const JournalQuarantineRecord* SurveyJournal::QuarantineAt(size_t ordinal, size_t index) const {
  auto it = quarantine_index_.find(std::make_pair(ordinal, index));
  return it == quarantine_index_.end() ? nullptr : &quarantines_[it->second];
}

void SurveyJournal::AppendSite(const JournalSiteRecord& record) {
  std::string body = EncodeSiteRecord(record);
  {
    std::lock_guard<std::mutex> lock(mu_);
    AppendFrameLocked(body);
  }
  executed_sites.fetch_add(1, std::memory_order_relaxed);
}

void SurveyJournal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  fflush(file_);
  fsync(fileno(file_));
}

bool AppendQuarantineRecord(const std::string& path, const JournalQuarantineRecord& record,
                            std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  FILE* file = fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return fail("cannot open journal " + path);
  }
  std::string contents;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  if (ferror(file)) {
    fclose(file);
    return fail("cannot read journal " + path);
  }

  JournalScan scan;
  ScanJournalContents(path, contents, &scan);
  if (!scan.hard_error.empty()) {
    fclose(file);
    return fail(scan.hard_error);
  }
  if (!scan.saw_header) {
    fclose(file);
    return fail(path + ": not an mfc journal (no valid header record)");
  }
  auto key = std::make_pair(record.cohort_ordinal, record.site_index);
  if (scan.sites.count(key) != 0 || scan.quarantine_index.count(key) != 0) {
    // Already executed (the crash was blamed on the wrong site) or already
    // quarantined: nothing to record.
    fclose(file);
    return true;
  }

  // The writer died mid-append in the worst case: drop the torn tail exactly
  // as Open would, so our record continues the valid prefix.
  if (scan.valid_end < contents.size()) {
    if (ftruncate(fileno(file), static_cast<off_t>(scan.valid_end)) != 0) {
      fclose(file);
      return fail("cannot truncate corrupt journal suffix in " + path);
    }
  }
  if (fseek(file, static_cast<long>(scan.valid_end), SEEK_SET) != 0) {
    fclose(file);
    return fail("cannot seek journal " + path);
  }
  std::string line = FrameJournalRecord(EncodeQuarantineRecord(record));
  bool ok = fwrite(line.data(), 1, line.size(), file) == line.size() && fflush(file) == 0 &&
            fsync(fileno(file)) == 0;
  fclose(file);
  return ok ? true : fail("cannot append quarantine record to " + path);
}

}  // namespace mfc
