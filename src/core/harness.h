// The coordinator's view of its client fleet.
//
// The MFC control logic (Coordinator) is written against this interface so
// the same algorithm drives simulated clients (SimTestbed), mocks in unit
// tests, or — in a deployment — real PlanetLab-style agents. Everything here
// corresponds to a concrete client-side capability in Figure 2b.
#ifndef MFC_SRC_CORE_HARNESS_H_
#define MFC_SRC_CORE_HARNESS_H_

#include <vector>

#include "src/core/types.h"
#include "src/http/message.h"
#include "src/sim/sim_time.h"

namespace mfc {

// One client's marching orders for an epoch.
struct CrowdRequestPlan {
  size_t client_id = 0;
  HttpRequest request;
  SimTime command_send_time = 0.0;  // when the coordinator transmits the command
  SimTime intended_arrival = 0.0;   // diagnostic: when the request should land
  size_t connections = 1;           // MFC-mr parallel connections
};

class ClientHarness {
 public:
  virtual ~ClientHarness() = default;

  virtual size_t ClientCount() const = 0;

  // Registration probe: ids of clients that answered within |timeout|
  // (Figure 2a step 1-2; the check behind "If k < 50, abort").
  virtual std::vector<size_t> ProbeClients(SimDuration timeout) = 0;

  // Round-trip estimates used by the synchronization arithmetic.
  virtual SimDuration MeasureCoordRtt(size_t client) = 0;
  virtual SimDuration MeasureTargetRtt(size_t client) = 0;

  // One isolated fetch by one client (the sequential base-response-time
  // measurements before epoch 1). Blocks (simulated time advances) until the
  // response completes or times out.
  virtual RequestSample FetchOnce(size_t client, const HttpRequest& request) = 0;

  // Executes a crowd: sends each command at its plan time, lets clients fire
  // their requests, and returns every sample reported by |poll_time|.
  virtual std::vector<RequestSample> ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                                  SimTime poll_time) = 0;

  virtual SimTime Now() const = 0;

  // Idles until |t| (epoch separation).
  virtual void WaitUntil(SimTime t) = 0;

  // Transport-level health verdict for one client, consulted by the
  // coordinator's eviction logic in addition to its own per-epoch miss
  // accounting. The default says "always healthy", which keeps harnesses
  // without a health table (the simulation testbed) byte-identical to the
  // pre-health-plane behavior; LiveHarness overrides it with its per-agent
  // probe-miss-streak verdict.
  virtual bool ClientHealthy(size_t client) const {
    (void)client;
    return true;
  }
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_HARNESS_H_
