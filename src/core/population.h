// Survey populations (Section 5): parameterized cohorts of simulated sites.
//
// The paper measured ~450 Quantcast-ranked servers across four rank bands,
// 107 startup servers, and 89 phishing servers. We cannot probe those hosts;
// instead each cohort is a distribution over server provisioning. A sampled
// site's "capacity knees" — the approximate concurrent-request counts at
// which base processing, query processing, and the access link each add
// ~100 ms — are drawn from cohort-specific lognormals (popular sites: high
// medians; phishing: like the 100K-1M band), then translated into concrete
// WebServerConfig / bandwidth parameters. The measured stopping distributions
// (Figs 7-9, Tables 4-5) then come out of running real MFC experiments
// against each sampled site, not from the knees directly: queueing dynamics,
// jitter, slow start and the check phase all intervene.
#ifndef MFC_SRC_CORE_POPULATION_H_
#define MFC_SRC_CORE_POPULATION_H_

#include <string>

#include "src/content/site_generator.h"
#include "src/net/wide_area.h"
#include "src/server/background_traffic.h"
#include "src/server/web_server.h"
#include "src/sim/rng.h"

namespace mfc {

enum class Cohort {
  kRank1To1K,      // Quantcast top 1-1K
  kRank1KTo10K,    // 1K-10K
  kRank10KTo100K,  // 10K-100K
  kRank100KTo1M,   // 100K-1M
  kStartup,        // recent startups (Section 5.2)
  kPhishing,       // PhishTank-listed hosts (Section 5.3)
};

std::string_view CohortName(Cohort cohort);

// A fully-specified simulated deployment.
struct SiteInstance {
  SiteSpec site;
  WebServerConfig server;
  double server_access_bps = 12.5e6;
  size_t replicas = 1;
  // The intended capacity knees, kept for calibration diagnostics.
  double base_knee = 0.0;
  double query_knee = 0.0;
  double bandwidth_knee = 0.0;
};

// Draws one site from the cohort's provisioning distribution.
SiteInstance SampleSite(Rng& rng, Cohort cohort);

// Named profiles for the cooperating-site case studies (Section 4). These
// are hand-built to match the paper's descriptions, not sampled.
SiteInstance MakeQtnpProfile();  // top-50 commercial, non-production mirror
SiteInstance MakeQtpProfile();   // production: 16 servers, load balanced
SiteInstance MakeUniv1Profile(); // small research-group server
SiteInstance MakeUniv2Profile(); // 1 Gbps link, software thread limit ~130
SiteInstance MakeUniv3Profile(); // 1.5 GHz Sun V240, weak query handling
SiteInstance MakeLabValidationProfile();  // Section 3.2 Apache + MySQL box

}  // namespace mfc

#endif  // MFC_SRC_CORE_POPULATION_H_
