// Survey populations (Section 5): parameterized cohorts of simulated sites.
//
// The paper measured ~450 Quantcast-ranked servers across four rank bands,
// 107 startup servers, and 89 phishing servers. We cannot probe those hosts;
// instead each cohort is a distribution over server provisioning. A sampled
// site's "capacity knees" — the approximate concurrent-request counts at
// which base processing, query processing, and the access link each add
// ~100 ms — are drawn from cohort-specific lognormals (popular sites: high
// medians; phishing: like the 100K-1M band), then translated into concrete
// WebServerConfig / bandwidth parameters. The measured stopping distributions
// (Figs 7-9, Tables 4-5) then come out of running real MFC experiments
// against each sampled site, not from the knees directly: queueing dynamics,
// jitter, slow start and the check phase all intervene.
#ifndef MFC_SRC_CORE_POPULATION_H_
#define MFC_SRC_CORE_POPULATION_H_

#include <string>
#include <vector>

#include "src/content/site_generator.h"
#include "src/net/wide_area.h"
#include "src/server/background_traffic.h"
#include "src/server/web_server.h"
#include "src/sim/rng.h"

namespace mfc {

enum class Cohort {
  kRank1To1K,      // Quantcast top 1-1K
  kRank1KTo10K,    // 1K-10K
  kRank10KTo100K,  // 10K-100K
  kRank100KTo1M,   // 100K-1M
  kStartup,        // recent startups (Section 5.2)
  kPhishing,       // PhishTank-listed hosts (Section 5.3)
  kLongTail,       // simulated Quantcast deep tail (rank-dependent, see below)
};

std::string_view CohortName(Cohort cohort);

// A fully-specified simulated deployment.
struct SiteInstance {
  SiteSpec site;
  WebServerConfig server;
  double server_access_bps = 12.5e6;
  size_t replicas = 1;
  // Steady organic visitor load the probes contend with (req/s). Zero for
  // the paper cohorts; the long-tail synthesizer draws it per site.
  double background_rps = 0.0;
  // The intended capacity knees, kept for calibration diagnostics.
  double base_knee = 0.0;
  double query_knee = 0.0;
  double bandwidth_knee = 0.0;
};

// Draws one site from the cohort's provisioning distribution.
SiteInstance SampleSite(Rng& rng, Cohort cohort);

// ---- per-index seed derivation (DESIGN.md §12) ---------------------------
//
// Survey seeds must be collision-free across (survey_seed, cohort, index):
// the historical seed * 1000 + i derivation made site 1000 of seed s reuse
// the exact seed of site 0 of seed s+1, silently correlating surveys once a
// cohort crosses 1000 sites. These helpers mix the full triple through
// SplitMix64 instead; sampling and experiment execution use distinct domain
// constants so a site's provisioning draw can never alias its workload
// stream. check_journal.py / check_shard_merge.py reimplement the same math
// in Python — keep them in sync.

// The standard SplitMix64 finalizer (public domain, Steele et al.).
uint64_t SplitMix64(uint64_t x);
// Seed for running site |index|'s experiment.
uint64_t SiteExperimentSeed(uint64_t survey_seed, Cohort cohort, uint64_t index);
// Seed for drawing site |index|'s provisioning from the cohort distribution.
uint64_t SiteSampleSeed(uint64_t survey_seed, Cohort cohort, uint64_t index);

// Regenerates site |index| of a survey as a pure function of
// (survey_seed, cohort, index) — the streaming sampler. For kLongTail the
// index doubles as the site's tail rank, making provisioning rank-dependent.
SiteInstance SampleSiteAt(uint64_t survey_seed, Cohort cohort, size_t index);

// Long-tail synthesizer: one site at 100K+|rank| in a simulated top-1M
// popularity order. Knee medians decay log-linearly with depth (Zipf-style
// popularity proxy), object sizes are lognormal with a Pareto upper tail,
// and a heavy-tailed session rate supplies organic background load — the
// workload-characterization shape (arXiv 2409.12299) rather than the three
// fixed paper cohorts.
SiteInstance SampleLongTailSite(Rng& rng, size_t rank);

// Lazily yields a survey's sites. Streaming mode (the default) regenerates
// site i on demand via SampleSiteAt — O(1) memory, thread-safe, any access
// order — so a 1M-site survey never materializes its instance vector.
// Legacy mode reproduces the pre-PR-8 sampler: every site drawn up front
// from one sequential Rng(seed) stream, experiment seeds seed * 1000 + i
// (collisions included), for replaying historical journals and goldens.
class SiteStream {
 public:
  SiteStream(Cohort cohort, uint64_t survey_seed, size_t servers, bool legacy_seeds);

  SiteInstance Site(size_t index) const;
  uint64_t ExperimentSeed(size_t index) const;

  size_t Servers() const { return servers_; }
  bool Legacy() const { return legacy_; }
  // How many instances are resident (tests assert streaming keeps this 0).
  size_t MaterializedCount() const { return legacy_instances_.size(); }

 private:
  Cohort cohort_;
  uint64_t seed_;
  size_t servers_;
  bool legacy_;
  std::vector<SiteInstance> legacy_instances_;
};

// Named profiles for the cooperating-site case studies (Section 4). These
// are hand-built to match the paper's descriptions, not sampled.
SiteInstance MakeQtnpProfile();  // top-50 commercial, non-production mirror
SiteInstance MakeQtpProfile();   // production: 16 servers, load balanced
SiteInstance MakeUniv1Profile(); // small research-group server
SiteInstance MakeUniv2Profile(); // 1 Gbps link, software thread limit ~130
SiteInstance MakeUniv3Profile(); // 1.5 GHz Sun V240, weak query handling
SiteInstance MakeLabValidationProfile();  // Section 3.2 Apache + MySQL box

}  // namespace mfc

#endif  // MFC_SRC_CORE_POPULATION_H_
