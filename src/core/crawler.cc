#include "src/core/crawler.h"

#include <deque>
#include <set>
#include <string>

#include "src/http/html.h"

namespace mfc {
namespace {

uint64_t ResponseSize(const HttpResponse& response) {
  if (auto length = response.headers.ContentLength(); length.has_value()) {
    return *length;
  }
  return response.body.size();
}

}  // namespace

const DiscoveredObject* ContentProfile::PickLargeObject(uint64_t max_bytes) const {
  const DiscoveredObject* best = nullptr;
  for (const DiscoveredObject& object : large_objects) {
    if (object.size_bytes > max_bytes) {
      continue;
    }
    if (best == nullptr || object.size_bytes > best->size_bytes) {
      best = &object;
    }
  }
  // All candidates oversized: fall back to the smallest one.
  if (best == nullptr && !large_objects.empty()) {
    best = &large_objects.front();
    for (const DiscoveredObject& object : large_objects) {
      if (object.size_bytes < best->size_bytes) {
        best = &object;
      }
    }
  }
  return best;
}

const DiscoveredObject* ContentProfile::PickSmallQuery() const {
  return small_queries.empty() ? nullptr : &small_queries.front();
}

Crawler::Crawler(Fetcher& fetcher, CrawlLimits limits, ProfileThresholds thresholds)
    : fetcher_(fetcher), limits_(limits), thresholds_(thresholds) {}

ContentProfile Crawler::Crawl(const Url& root) {
  ContentProfile profile;
  profile.base_page = root;

  std::set<std::string> visited;
  std::deque<std::pair<Url, size_t>> frontier;  // (url, depth)
  frontier.emplace_back(root, 0);
  visited.insert(root.ToString());

  while (!frontier.empty() && profile.urls_probed < limits_.max_probed_urls) {
    auto [url, depth] = frontier.front();
    frontier.pop_front();

    DiscoveredObject object;
    object.url = url;

    if (url.HasQuery()) {
      // Queries are sized with a GET: their HEAD rarely reports a length.
      HttpResponse response = fetcher_.Fetch(HttpRequest::For(HttpMethod::kGet, url));
      ++profile.urls_probed;
      object.status = response.status;
      object.content_class = ContentClass::kQuery;
      object.size_bytes = ResponseSize(response);
      if (IsSuccess(response.status)) {
        profile.all_objects.push_back(object);
        if (object.size_bytes < thresholds_.small_query_max_bytes) {
          profile.small_queries.push_back(object);
        }
      }
      continue;
    }

    ContentClass klass = ClassifyPath(url.path);
    if (klass == ContentClass::kText && profile.pages_crawled < limits_.max_pages) {
      // Pages are fetched fully so links can be extracted.
      HttpResponse response = fetcher_.Fetch(HttpRequest::For(HttpMethod::kGet, url));
      ++profile.urls_probed;
      ++profile.pages_crawled;
      object.status = response.status;
      object.content_class = klass;
      object.size_bytes = ResponseSize(response);
      if (IsSuccess(response.status)) {
        profile.all_objects.push_back(object);
        if (object.size_bytes >= thresholds_.large_object_min_bytes) {
          profile.large_objects.push_back(object);
        }
        if (depth < limits_.max_depth) {
          for (const std::string& link : ExtractLinks(response.body)) {
            auto resolved = ParseUrl(link, &url);
            if (!resolved.has_value() || resolved->host != root.host) {
              continue;  // stay on-site
            }
            if (visited.insert(resolved->ToString()).second) {
              frontier.emplace_back(*resolved, depth + 1);
            }
          }
        }
      }
      continue;
    }

    // Non-page static object: size via HEAD (Section 2.2.1).
    HttpResponse response = fetcher_.Fetch(HttpRequest::For(HttpMethod::kHead, url));
    ++profile.urls_probed;
    object.status = response.status;
    object.content_class = klass;
    object.size_bytes = ResponseSize(response);
    if (IsSuccess(response.status)) {
      profile.all_objects.push_back(object);
      if (object.size_bytes >= thresholds_.large_object_min_bytes &&
          (klass == ContentClass::kText || klass == ContentClass::kBinary ||
           klass == ContentClass::kImage)) {
        profile.large_objects.push_back(object);
      }
    }
  }
  return profile;
}

}  // namespace mfc
