// Request-synchronization arithmetic (Section 2.2.4).
//
// To make the first HTTP byte of every client arrive at the target at the
// common instant T, the coordinator issues the command to client i at
//     T - 0.5 * T_coord(i) - 1.5 * T_target(i)
// so that (assuming stationary latencies) the command reaches the client at
// T - 1.5 * T_target(i), the client starts its TCP handshake, and the request
// byte lands at T. The staggered variant (Section 6) offsets each client's
// target arrival by i * spacing instead.
#ifndef MFC_SRC_CORE_SYNC_SCHEDULER_H_
#define MFC_SRC_CORE_SYNC_SCHEDULER_H_

#include <cstddef>
#include <vector>

#include "src/sim/sim_time.h"

namespace mfc {

struct ClientLatencyEstimate {
  size_t client_id = 0;
  SimDuration coord_rtt = 0.0;   // T_coord(i): coordinator <-> client
  SimDuration target_rtt = 0.0;  // T_target(i): client <-> target
};

struct DispatchTime {
  size_t client_id = 0;
  SimTime command_send_time = 0.0;   // when the coordinator transmits
  SimTime intended_arrival = 0.0;    // when the request should hit the target
};

// Computes command-send instants for a crowd whose requests should arrive at
// |arrival_time| (plus i * |stagger_spacing| for the staggered variant, in
// the order given). Dispatch times may lie in the past relative to "now" if
// |arrival_time| is too close; callers choose arrival_time at least
// max(0.5*Tc + 1.5*Tt) in the future (the schedule lead).
std::vector<DispatchTime> ComputeDispatchTimes(const std::vector<ClientLatencyEstimate>& clients,
                                               SimTime arrival_time,
                                               SimDuration stagger_spacing = 0.0);

// The minimum lead (seconds before T) needed so no command is sent in the
// past: max over clients of 0.5*Tc + 1.5*Tt.
SimDuration RequiredLead(const std::vector<ClientLatencyEstimate>& clients);

}  // namespace mfc

#endif  // MFC_SRC_CORE_SYNC_SCHEDULER_H_
