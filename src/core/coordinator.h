// The MFC coordinator: orchestrates registration, per-stage delay
// computation, epochs, the check phase, and termination (Figure 2a).
#ifndef MFC_SRC_CORE_COORDINATOR_H_
#define MFC_SRC_CORE_COORDINATOR_H_

#include <map>
#include <optional>
#include <vector>

#include "src/core/config.h"
#include "src/core/crawler.h"
#include "src/core/harness.h"
#include "src/core/types.h"
#include "src/http/url.h"
#include "src/sim/rng.h"
#include "src/telemetry/trace.h"

namespace mfc {

// The concrete probe objects a run uses, one per stage. Stages whose object
// is absent are skipped (the paper's survey could only run Small Query
// against sites hosting at least one qualifying query URL, etc.).
struct StageObjects {
  std::optional<Url> base_page;
  std::optional<Url> large_object;
  std::optional<Url> small_query;
  // Whether distinct query strings yield distinct dynamic objects; when true
  // each client requests a unique object (Section 2.2.2).
  bool small_query_unique = true;
};

// Derives stage objects from a crawl profile.
StageObjects SelectStageObjects(const ContentProfile& profile, bool unique_queries = true);

// Section 6 "measurers": independent observers that request (possibly
// different) objects concurrently with every crowd, to expose cross-resource
// correlations.
struct MeasurerSpec {
  size_t client_id = 0;
  HttpRequest request;
};

class Coordinator {
 public:
  Coordinator(ClientHarness& harness, ExperimentConfig config, uint64_t seed = 1);

  // Registers measurers to ride along with each epoch. Their samples are
  // excluded from the decision metric and reported separately.
  void SetMeasurers(std::vector<MeasurerSpec> measurers);
  // Measurer samples per (stage, epoch index), populated during Run.
  const std::vector<std::vector<RequestSample>>& MeasurerSamples() const {
    return measurer_samples_;
  }

  // Runs the full experiment: registration check, then the given stages in
  // order. Stage list defaults to the paper's three.
  ExperimentResult Run(const StageObjects& objects);
  ExperimentResult Run(const StageObjects& objects, const std::vector<StageKind>& stages);

  // Optional tracing/metrics sink. When set, the run is wrapped in
  // "experiment" > "stage" > "prepare"/"epoch"/"check_phase"/"stop_decision"
  // spans (the decision metric rides as span attributes), epoch counters and
  // metric histograms accumulate in the registry, the coordinator publishes
  // its current stage label for the server's request spans, and — when
  // telemetry->progress — live per-epoch lines go to stderr.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  const ExperimentConfig& Config() const { return config_; }

 private:
  struct ClientState {
    size_t id = 0;
    SimDuration coord_rtt = 0.0;
    SimDuration target_rtt = 0.0;
    SimDuration base_response_time = 0.0;
    bool usable = false;
    // Graceful-degradation bookkeeping: a client that misses (no sample, or
    // nothing but timeouts) config.evict_after_misses epochs in a row is
    // marked unhealthy and silently replaced by a spare from the usable pool.
    size_t consecutive_misses = 0;
    bool healthy = true;
  };

  // Builds the request client |id| issues for |kind| (stable across epochs so
  // the base measurement normalizes the same object).
  HttpRequest RequestFor(StageKind kind, const StageObjects& objects, size_t client_id) const;

  // Delay computation + sequential base measurements for one stage.
  std::vector<ClientState> PrepareClients(StageKind kind, const StageObjects& objects,
                                          const std::vector<size_t>& registered);

  StageResult RunStage(StageKind kind, const StageObjects& objects,
                       const std::vector<size_t>& registered);

  // Executes one epoch of |crowd_size| concurrent requests; returns the
  // coordinator's view of it.
  EpochResult RunEpoch(StageKind kind, const StageObjects& objects,
                       std::vector<ClientState>& clients, size_t crowd_size, bool check_phase);

  double MetricPercentile(StageKind kind) const;

  // Span helpers; no-ops (returning 0) without a tracer.
  SpanId BeginSpan(const char* name, SpanId parent);
  void EndSpan(SpanId id);

  ClientHarness& harness_;
  ExperimentConfig config_;
  Rng rng_;
  std::vector<MeasurerSpec> measurers_;
  std::vector<std::vector<RequestSample>> measurer_samples_;
  Telemetry* telemetry_ = nullptr;
  SpanId experiment_span_ = 0;
  // Parent for the next epoch span: the stage span, or the enclosing
  // check-phase span during confirmation runs.
  SpanId epoch_parent_ = 0;
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_COORDINATOR_H_
