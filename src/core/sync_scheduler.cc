#include "src/core/sync_scheduler.h"

#include <algorithm>

namespace mfc {

std::vector<DispatchTime> ComputeDispatchTimes(const std::vector<ClientLatencyEstimate>& clients,
                                               SimTime arrival_time,
                                               SimDuration stagger_spacing) {
  std::vector<DispatchTime> out;
  out.reserve(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    const ClientLatencyEstimate& c = clients[i];
    SimTime arrival = arrival_time + stagger_spacing * static_cast<double>(i);
    DispatchTime d;
    d.client_id = c.client_id;
    d.intended_arrival = arrival;
    d.command_send_time = arrival - 0.5 * c.coord_rtt - 1.5 * c.target_rtt;
    out.push_back(d);
  }
  return out;
}

SimDuration RequiredLead(const std::vector<ClientLatencyEstimate>& clients) {
  SimDuration lead = 0.0;
  for (const ClientLatencyEstimate& c : clients) {
    lead = std::max(lead, 0.5 * c.coord_rtt + 1.5 * c.target_rtt);
  }
  return lead;
}

}  // namespace mfc
