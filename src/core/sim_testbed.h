// Simulated wide-area testbed: the substitute for PlanetLab + the Internet.
//
// Owns the event loop, the wide-area network, and the client fleet, and
// implements both ClientHarness (for the Coordinator) and Fetcher (for the
// Crawler, fetching from the coordinator's own vantage point). The target
// server is any HttpTarget — a full WebServer, a ServerCluster, or the
// synthetic validation server.
//
// Request timeline, mirroring Section 2.2.4: a command sent at t reaches the
// client after one jittered coordinator→client one-way delay; the client
// immediately opens a TCP connection (SYN, SYN-ACK, then ACK+request ≈ 1.5
// jittered RTTs) so the first request byte lands at the target ≈ T; the
// response body streams back through the fluid-flow network; the client
// records (HTTP code, numbytes, response time) and kills anything still
// outstanding at the 10 s timer.
#ifndef MFC_SRC_CORE_SIM_TESTBED_H_
#define MFC_SRC_CORE_SIM_TESTBED_H_

#include <memory>
#include <vector>

#include "src/core/crawler.h"
#include "src/core/harness.h"
#include "src/net/wide_area.h"
#include "src/server/http_target.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"

namespace mfc {

struct TestbedConfig {
  WideAreaConfig wan;
  // The coordinator's own connectivity (used for crawling). Defaults to a
  // well-connected university host.
  ClientNetProfile coordinator_net{Millis(40), Millis(1), 125e6, 0};
};

class SimTestbed : public ClientHarness, public Fetcher {
 public:
  SimTestbed(uint64_t seed, TestbedConfig config, std::vector<ClientNetProfile> fleet,
             HttpTarget& target);

  EventLoop& Loop() { return loop_; }
  WideAreaNetwork& Wan() { return *wan_; }
  HttpTarget& Target() { return target_; }
  Rng& TestRng() { return rng_; }

  // ClientHarness:
  size_t ClientCount() const override { return fleet_size_; }
  std::vector<size_t> ProbeClients(SimDuration timeout) override;
  SimDuration MeasureCoordRtt(size_t client) override;
  SimDuration MeasureTargetRtt(size_t client) override;
  RequestSample FetchOnce(size_t client, const HttpRequest& request) override;
  std::vector<RequestSample> ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                          SimTime poll_time) override;
  SimTime Now() const override { return loop_.Now(); }
  void WaitUntil(SimTime t) override { loop_.RunUntil(t); }

  // Fetcher (coordinator-vantage crawl fetch). The response body is the real
  // hosted HTML for static text pages, so link extraction works; bulk data
  // responses carry Content-Length only. The wire form is round-tripped
  // through the real serializer + parser.
  HttpResponse Fetch(const HttpRequest& request) override;

  // Per-request kill timer (client side).
  SimDuration request_timeout() const { return request_timeout_; }
  void set_request_timeout(SimDuration t) { request_timeout_ = t; }

  // Low-level: fire one request from |client| right now; |on_done| gets the
  // sample at completion or kill-timeout. Baseline load generators drive the
  // loop themselves and use this directly.
  void Launch(size_t client, const HttpRequest& request,
              std::function<void(const RequestSample&)> on_done);

 private:
  // Shared state of one in-flight client request.
  struct PendingRequest {
    size_t client = 0;
    SimTime start = 0.0;
    bool settled = false;       // sample already recorded (completion or kill)
    bool transport_called = false;
    FlowId flow = 0;            // active download, 0 if none
    EventId kill_timer = 0;
    HttpStatus status = HttpStatus::kOk;
    double bytes = 0.0;
    std::function<void()> on_sent;  // server-side release, owed to the target
  };


  EventLoop loop_;
  Rng rng_;
  TestbedConfig config_;
  size_t fleet_size_ = 0;
  size_t coordinator_index_ = 0;  // appended pseudo-client for crawl fetches
  std::unique_ptr<WideAreaNetwork> wan_;
  HttpTarget& target_;
  SimDuration request_timeout_ = Seconds(10);
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_SIM_TESTBED_H_
