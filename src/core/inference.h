// Turning raw stage results into the operator-facing assessment the paper's
// cooperating sites received: which sub-system is constrained, at what
// request volume, and what cross-stage comparisons imply (Sections 4 and 6).
#ifndef MFC_SRC_CORE_INFERENCE_H_
#define MFC_SRC_CORE_INFERENCE_H_

#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/types.h"

namespace mfc {

// The sub-system a stage exercises (Section 2.2.2).
std::string_view SubsystemFor(StageKind kind);

struct SubsystemAssessment {
  StageKind stage = StageKind::kBase;
  bool constrained = false;        // check phase confirmed a stop
  size_t stopping_crowd_size = 0;  // valid when constrained
  size_t max_crowd_tested = 0;
  SimDuration worst_metric = 0.0;  // largest epoch metric observed
  std::string summary;
};

struct InferenceReport {
  std::vector<SubsystemAssessment> assessments;
  // Cross-stage observations: request-handling vs bandwidth, DDoS exposure,
  // overall provisioning grade.
  std::vector<std::string> notes;

  bool AnyConstraint() const;
  std::string ToText() const;
};

InferenceReport AnalyzeExperiment(const ExperimentResult& result, const ExperimentConfig& config);

}  // namespace mfc

#endif  // MFC_SRC_CORE_INFERENCE_H_
