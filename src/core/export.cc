#include "src/core/export.h"

#include <cstdio>

namespace mfc {
namespace {

std::string FormatMs(SimDuration d) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.3f", ToMillis(d));
  return buf;
}

// Minimal JSON string escaping for the fields we emit (stage names and abort
// reasons are ASCII, but abort reasons may carry quotes in principle).
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string ExportEpochsCsv(const ExperimentResult& result) {
  std::string csv =
      "stage,epoch,crowd_size,samples,metric_ms,exceeded,check_phase,stopped_stage\n";
  for (const StageResult& stage : result.stages) {
    for (size_t e = 0; e < stage.epochs.size(); ++e) {
      const EpochResult& epoch = stage.epochs[e];
      csv += std::string(StageName(stage.kind)) + "," + std::to_string(e + 1) + "," +
             std::to_string(epoch.crowd_size) + "," + std::to_string(epoch.samples_received) +
             "," + FormatMs(epoch.metric) + "," + (epoch.exceeded_threshold ? "1" : "0") + "," +
             (epoch.check_phase ? "1" : "0") + "," + (stage.stopped ? "1" : "0") + "\n";
    }
  }
  return csv;
}

std::string ExportJson(const ExperimentResult& result) {
  std::string json = "{";
  json += "\"aborted\":" + std::string(result.aborted ? "true" : "false");
  if (result.aborted) {
    json += ",\"abort_reason\":\"" + JsonEscape(result.abort_reason) + "\"";
  }
  json += ",\"registered_clients\":" + std::to_string(result.registered_clients);
  json += ",\"stages\":[";
  for (size_t s = 0; s < result.stages.size(); ++s) {
    const StageResult& stage = result.stages[s];
    if (s > 0) {
      json += ",";
    }
    json += "{\"stage\":\"" + std::string(StageName(stage.kind)) + "\"";
    json += ",\"stopped\":" + std::string(stage.stopped ? "true" : "false");
    if (stage.stopped) {
      json += ",\"stopping_crowd_size\":" + std::to_string(stage.stopping_crowd_size);
    }
    json += ",\"max_crowd_tested\":" + std::to_string(stage.max_crowd_tested);
    json += ",\"total_requests\":" + std::to_string(stage.total_requests);
    json += ",\"epochs\":[";
    for (size_t e = 0; e < stage.epochs.size(); ++e) {
      const EpochResult& epoch = stage.epochs[e];
      if (e > 0) {
        json += ",";
      }
      json += "{\"crowd\":" + std::to_string(epoch.crowd_size);
      json += ",\"samples\":" + std::to_string(epoch.samples_received);
      json += ",\"metric_ms\":" + FormatMs(epoch.metric);
      json += ",\"exceeded\":" + std::string(epoch.exceeded_threshold ? "true" : "false");
      json += ",\"check\":" + std::string(epoch.check_phase ? "true" : "false");
      json += "}";
    }
    json += "]}";
  }
  json += "]}";
  return json;
}

}  // namespace mfc
