#include "src/core/export.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace mfc {
namespace {

std::string FormatMs(SimDuration d) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.3f", ToMillis(d));
  return buf;
}

// Minimal JSON string escaping for the fields we emit (stage names and abort
// reasons are ASCII, but abort reasons may carry quotes in principle).
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string ExportEpochsCsv(const ExperimentResult& result) {
  std::string csv =
      "stage,epoch,crowd_size,samples,metric_ms,exceeded,check_phase,stopped_stage\n";
  for (const StageResult& stage : result.stages) {
    for (size_t e = 0; e < stage.epochs.size(); ++e) {
      const EpochResult& epoch = stage.epochs[e];
      csv += std::string(StageName(stage.kind)) + "," + std::to_string(e + 1) + "," +
             std::to_string(epoch.crowd_size) + "," + std::to_string(epoch.samples_received) +
             "," + FormatMs(epoch.metric) + "," + (epoch.exceeded_threshold ? "1" : "0") + "," +
             (epoch.check_phase ? "1" : "0") + "," + (stage.stopped ? "1" : "0") + "\n";
    }
  }
  return csv;
}

std::string ExportJson(const ExperimentResult& result) {
  std::string json = "{";
  json += "\"aborted\":" + std::string(result.aborted ? "true" : "false");
  if (result.aborted) {
    json += ",\"abort_reason\":\"" + JsonEscape(result.abort_reason) + "\"";
  }
  json += ",\"registered_clients\":" + std::to_string(result.registered_clients);
  json += ",\"stages\":[";
  for (size_t s = 0; s < result.stages.size(); ++s) {
    const StageResult& stage = result.stages[s];
    if (s > 0) {
      json += ",";
    }
    json += "{\"stage\":\"" + std::string(StageName(stage.kind)) + "\"";
    json += ",\"stopped\":" + std::string(stage.stopped ? "true" : "false");
    if (stage.stopped) {
      json += ",\"stopping_crowd_size\":" + std::to_string(stage.stopping_crowd_size);
    }
    json += ",\"max_crowd_tested\":" + std::to_string(stage.max_crowd_tested);
    json += ",\"end_reason\":\"" + std::string(StageEndReasonName(stage.end_reason)) + "\"";
    if (!stage.end_detail.empty()) {
      json += ",\"end_detail\":\"" + JsonEscape(stage.end_detail) + "\"";
    }
    json += ",\"total_requests\":" + std::to_string(stage.total_requests);
    json += ",\"epochs\":[";
    for (size_t e = 0; e < stage.epochs.size(); ++e) {
      const EpochResult& epoch = stage.epochs[e];
      if (e > 0) {
        json += ",";
      }
      json += "{\"crowd\":" + std::to_string(epoch.crowd_size);
      json += ",\"samples\":" + std::to_string(epoch.samples_received);
      json += ",\"metric_ms\":" + FormatMs(epoch.metric);
      json += ",\"exceeded\":" + std::string(epoch.exceeded_threshold ? "true" : "false");
      json += ",\"check\":" + std::string(epoch.check_phase ? "true" : "false");
      json += "}";
    }
    json += "]}";
  }
  json += "]}";
  return json;
}

std::string ExportTraceJson(const Tracer& tracer) {
  const std::vector<TraceSpan>& spans = tracer.Spans();
  // Monotone timestamps: order events by (pid, start time, id).
  std::vector<size_t> order(spans.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&spans](size_t a, size_t b) {
    if (spans[a].pid != spans[b].pid) {
      return spans[a].pid < spans[b].pid;
    }
    if (spans[a].start != spans[b].start) {
      return spans[a].start < spans[b].start;
    }
    return spans[a].id < spans[b].id;
  });

  auto micros = [](SimTime t) {
    char buf[40];
    snprintf(buf, sizeof(buf), "%.3f", t * 1e6);
    return std::string(buf);
  };

  std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (size_t i : order) {
    const TraceSpan& span = spans[i];
    if (!first) {
      json += ",";
    }
    first = false;
    json += "\n{\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"" +
            JsonEscape(span.category) + "\",\"ph\":\"X\",\"ts\":" + micros(span.start) +
            ",\"dur\":" + micros(span.Duration()) + ",\"pid\":" + std::to_string(span.pid) +
            ",\"tid\":" + std::to_string(span.track);
    json += ",\"args\":{\"id\":" + std::to_string(span.id);
    if (span.parent != 0) {
      json += ",\"parent\":" + std::to_string(span.parent);
    }
    for (const auto& [key, value] : span.attrs) {
      json += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    json += "}}";
  }
  json += "\n]}\n";
  return json;
}

std::string ExportMetricsCsv(const MetricsRegistry& metrics) {
  auto fmt = [](double v) {
    char buf[40];
    snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  std::string csv = "kind,name,field,value\n";
  for (const auto& [name, value] : metrics.Counters()) {
    csv += "counter," + name + ",value," + fmt(value) + "\n";
  }
  for (const auto& [name, value] : metrics.Gauges()) {
    csv += "gauge," + name + ",value," + fmt(value) + "\n";
  }
  for (const auto& [name, stats] : metrics.Summaries()) {
    csv += "summary," + name + ",count," + std::to_string(stats.Count()) + "\n";
    csv += "summary," + name + ",mean," + fmt(stats.Mean()) + "\n";
    csv += "summary," + name + ",stddev," + fmt(stats.StdDev()) + "\n";
    csv += "summary," + name + ",min," + fmt(stats.MinValue()) + "\n";
    csv += "summary," + name + ",max," + fmt(stats.MaxValue()) + "\n";
  }
  for (const auto& [name, hist] : metrics.Histograms()) {
    csv += "hist," + name + ",total," + std::to_string(hist.Total()) + "\n";
    for (size_t i = 0; i < hist.BucketCount(); ++i) {
      csv += "hist," + name + ",bucket_" + std::to_string(i) + "," +
             std::to_string(hist.BucketValue(i)) + "\n";
    }
  }
  return csv;
}

bool WriteFileAtomic(const std::string& path, const std::string& contents) {
  std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  ok = fflush(f) == 0 && ok;
  ok = fsync(fileno(f)) == 0 && ok;
  ok = fclose(f) == 0 && ok;
  if (ok) {
    ok = rename(tmp.c_str(), path.c_str()) == 0;
  }
  if (!ok) {
    remove(tmp.c_str());
  }
  return ok;
}

}  // namespace mfc
