// Target-content profiling (Section 2.2.1).
//
// Before an MFC run against a non-cooperating server, the coordinator crawls
// the target, classifies discovered objects by content type (text, binary,
// image, query) and sorts them into the two probe categories by size:
// Large Objects (regular files/binaries/images >= 100 KB, sized via HEAD) and
// Small Queries (URLs with a '?' whose GET response is under 15 KB).
#ifndef MFC_SRC_CORE_CRAWLER_H_
#define MFC_SRC_CORE_CRAWLER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/core/config.h"
#include "src/http/content_type.h"
#include "src/http/message.h"
#include "src/http/url.h"

namespace mfc {

// Synchronous HTTP fetch from the coordinator's vantage point.
class Fetcher {
 public:
  virtual ~Fetcher() = default;
  virtual HttpResponse Fetch(const HttpRequest& request) = 0;
};

struct CrawlLimits {
  size_t max_pages = 200;       // HTML documents fetched with GET
  size_t max_probed_urls = 600; // total URLs sized (HEAD/GET)
  size_t max_depth = 8;
};

struct DiscoveredObject {
  Url url;
  ContentClass content_class = ContentClass::kUnknown;
  uint64_t size_bytes = 0;
  HttpStatus status = HttpStatus::kOk;
};

struct ContentProfile {
  std::optional<Url> base_page;
  std::vector<DiscoveredObject> large_objects;   // candidates for Large Object
  std::vector<DiscoveredObject> small_queries;   // candidates for Small Query
  std::vector<DiscoveredObject> all_objects;
  size_t pages_crawled = 0;
  size_t urls_probed = 0;

  bool HasLargeObject() const { return !large_objects.empty(); }
  bool HasSmallQuery() const { return !small_queries.empty(); }
  // The largest Large Object candidate (the paper bounds survey picks at
  // 2 MB, so prefer candidates under |max_bytes|).
  const DiscoveredObject* PickLargeObject(uint64_t max_bytes = 2 * 1024 * 1024) const;
  const DiscoveredObject* PickSmallQuery() const;
};

class Crawler {
 public:
  Crawler(Fetcher& fetcher, CrawlLimits limits, ProfileThresholds thresholds);

  // Crawls starting from |root| (typically "http://host/").
  ContentProfile Crawl(const Url& root);

 private:
  Fetcher& fetcher_;
  CrawlLimits limits_;
  ProfileThresholds thresholds_;
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_CRAWLER_H_
