#include "src/core/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "src/core/journal/shutdown.h"
#include "src/core/population.h"
#include "src/telemetry/stats_stream.h"

namespace mfc {

WorkerExitClass ClassifyWorkerExit(int wait_status) {
  if (WIFSIGNALED(wait_status)) {
    return WorkerExitClass::kRetryable;
  }
  if (!WIFEXITED(wait_status)) {
    return WorkerExitClass::kRetryable;
  }
  switch (WEXITSTATUS(wait_status)) {
    case 0:
      return WorkerExitClass::kSuccess;
    case 2:   // usage error
    case 3:   // journal/merge config error
    case 127: // exec failure
      return WorkerExitClass::kPermanent;
    case 130:
      return WorkerExitClass::kInterrupted;
    default:
      return WorkerExitClass::kRetryable;
  }
}

std::string DescribeWorkerExit(int wait_status) {
  if (WIFSIGNALED(wait_status)) {
    int sig = WTERMSIG(wait_status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" + (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(wait_status)) {
    return "exit " + std::to_string(WEXITSTATUS(wait_status));
  }
  return "status " + std::to_string(wait_status);
}

double SupervisorBackoffSeconds(const RetryPolicy& policy, size_t attempt, uint64_t seed,
                                size_t shard) {
  double base = policy.BackoffFor(attempt == 0 ? 1 : attempt);
  // Two finalizer rounds decorrelate the (seed, shard, attempt) lattice; the
  // top 53 bits become a uniform double in [0, 1).
  uint64_t h = SplitMix64(SplitMix64(seed ^ (0x9E3779B97F4A7C15ULL * (shard + 1))) +
                          0xBF58476D1CE4E5B9ULL * attempt);
  double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return base * (0.5 + unit);
}

std::optional<std::pair<size_t, size_t>> NextPendingSite(const JournalFileData& data) {
  std::set<std::pair<size_t, size_t>> quarantined;
  for (const JournalQuarantineRecord& q : data.quarantines) {
    quarantined.emplace(q.cohort_ordinal, q.site_index);
  }
  for (const JournalCohortRecord& cohort : data.cohorts) {
    for (size_t i = cohort.shard_index; i < cohort.servers; i += cohort.shards) {
      auto key = std::make_pair(cohort.ordinal, i);
      if (data.sites.count(key) == 0 && quarantined.count(key) == 0) {
        return key;
      }
    }
  }
  return std::nullopt;
}

QuarantineTracker::QuarantineTracker(size_t shards, size_t quarantine_after)
    : quarantine_after_(quarantine_after == 0 ? 1 : quarantine_after), states_(shards) {}

bool QuarantineTracker::ObserveCrash(size_t shard,
                                     std::optional<std::pair<size_t, size_t>> suspect,
                                     size_t journaled) {
  State& state = states_[shard];
  if (!suspect.has_value()) {
    // Died before any cohort record (startup crash) or with nothing left to
    // run: no site to blame.
    state = State{};
    return false;
  }
  if (state.valid && state.suspect == *suspect && state.journaled == journaled) {
    ++state.count;
  } else {
    state.valid = true;
    state.suspect = *suspect;
    state.journaled = journaled;
    state.count = 1;
  }
  return state.count >= quarantine_after_;
}

void QuarantineTracker::Reset(size_t shard) { states_[shard] = State{}; }

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t FileSize(const std::string& path) {
  if (path.empty()) {
    return 0;
  }
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

// Per-shard lifecycle state the monitor sweep advances.
struct ShardState {
  enum class Phase { kBackoff, kRunning, kDone, kFailed };
  Phase phase = Phase::kBackoff;
  double next_launch = 0.0;  // monotonic deadline while kBackoff
  pid_t pid = -1;
  size_t launches = 0;
  size_t failures = 0;  // consecutive exits without journal progress
  size_t crashes = 0;
  size_t hang_kills = 0;
  double last_activity = 0.0;
  uint64_t journal_size = 0;
  uint64_t heartbeat_size = 0;
  size_t journaled_at_crash = 0;  // durable records at the previous crash
  bool kill_sent = false;         // SIGKILL issued, waiting for the reap
};

}  // namespace

SurveySupervisor::SurveySupervisor(SupervisorOptions options) : options_(std::move(options)) {}

SupervisorResult SurveySupervisor::Run() {
  const SupervisorOptions& opt = options_;
  SupervisorResult result;
  result.shards.resize(opt.shards);
  if (opt.shards == 0 || !opt.command || opt.journal_paths.size() != opt.shards) {
    result.error = "supervisor misconfigured: shards/command/journal_paths";
    return result;
  }

  FILE* log = opt.log;
  auto logf = [log](const char* fmt, auto... args) {
    if (log != nullptr) {
      fprintf(log, fmt, args...);
      fflush(log);
    }
  };
  auto heartbeat_path = [&](size_t shard) -> std::string {
    return shard < opt.heartbeat_paths.size() ? opt.heartbeat_paths[shard] : std::string();
  };

  ClearShutdownRequest();
  InstallShutdownHandlers();

  std::vector<ShardState> shards(opt.shards);
  QuarantineTracker tracker(opt.shards, opt.quarantine_after);
  const double start = MonotonicSeconds();
  for (ShardState& shard : shards) {
    shard.next_launch = start;  // first launches are immediate
  }

  // supervisor.* counters, emitted as deltas to the stats stream.
  struct Counters {
    double launches = 0, restarts = 0, crashes = 0, hang_kills = 0, quarantined = 0,
           completed = 0;
  };
  Counters totals, emitted;
  double next_stats = start;
  auto emit_stats = [&](double now) {
    if (opt.stats == nullptr) {
      return;
    }
    size_t running = 0;
    for (const ShardState& shard : shards) {
      running += shard.phase == ShardState::Phase::kRunning ? 1 : 0;
    }
    StatsSnapshot snapshot;
    snapshot.t = now - start;
    snapshot.clock = "wall";
    snapshot.source = "supervisor";
    snapshot.counter_deltas = {
        {"supervisor.workers_running", static_cast<double>(running)},
        {"supervisor.launches", totals.launches - emitted.launches},
        {"supervisor.restarts", totals.restarts - emitted.restarts},
        {"supervisor.crashes", totals.crashes - emitted.crashes},
        {"supervisor.hang_kills", totals.hang_kills - emitted.hang_kills},
        {"supervisor.quarantined", totals.quarantined - emitted.quarantined},
        {"supervisor.shards_completed", totals.completed - emitted.completed},
    };
    emitted = totals;
    opt.stats->Emit(std::move(snapshot));
  };

  auto launch = [&](size_t index) {
    ShardState& shard = shards[index];
    std::vector<std::string> args = opt.command(index);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) {
      argv.push_back(arg.data());
    }
    argv.push_back(nullptr);

    pid_t pid = fork();
    if (pid == 0) {
      if (index < opt.log_paths.size() && !opt.log_paths[index].empty()) {
        int fd = open(opt.log_paths[index].c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
          dup2(fd, STDOUT_FILENO);
          dup2(fd, STDERR_FILENO);
          if (fd > STDERR_FILENO) {
            close(fd);
          }
        }
      }
      execv(argv[0], argv.data());
      _exit(127);
    }
    if (pid < 0) {
      // fork pressure: stay in backoff and retry on a later sweep.
      shard.next_launch = MonotonicSeconds() + 1.0;
      logf("supervisor: shard %zu fork failed (%s); retrying\n", index, strerror(errno));
      return;
    }
    ++shard.launches;
    ++result.shards[index].launches;
    totals.launches += 1;
    if (shard.launches > 1) {
      ++result.restarts;
      totals.restarts += 1;
    }
    shard.phase = ShardState::Phase::kRunning;
    shard.pid = pid;
    shard.kill_sent = false;
    shard.last_activity = MonotonicSeconds();
    shard.journal_size = FileSize(opt.journal_paths[index]);
    shard.heartbeat_size = FileSize(heartbeat_path(index));
    logf("supervisor: shard %zu pid %d started (attempt %zu)\n", index,
         static_cast<int>(pid), shard.launches);
  };

  auto schedule_restart = [&](size_t index) {
    ShardState& shard = shards[index];
    double delay = SupervisorBackoffSeconds(opt.retry, shard.failures, opt.seed, index);
    shard.phase = ShardState::Phase::kBackoff;
    shard.pid = -1;
    shard.next_launch = MonotonicSeconds() + delay;
    logf("supervisor: shard %zu restarting in %.2fs (failure streak %zu)\n", index, delay,
         shard.failures);
  };

  bool draining = false;
  std::string permanent_error;

  auto begin_drain = [&](const char* why) {
    if (draining) {
      return;
    }
    draining = true;
    size_t live = 0;
    for (ShardState& shard : shards) {
      if (shard.phase == ShardState::Phase::kRunning && shard.pid > 0) {
        // SIGCONT first: a SIGSTOPped worker must wake to see the SIGTERM.
        kill(shard.pid, SIGCONT);
        kill(shard.pid, SIGTERM);
        ++live;
      } else if (shard.phase == ShardState::Phase::kBackoff) {
        shard.phase = ShardState::Phase::kFailed;  // never relaunch mid-drain
      }
    }
    logf("supervisor: %s; draining %zu worker(s)\n", why, live);
  };

  auto handle_exit = [&](size_t index, int status) {
    ShardState& shard = shards[index];
    shard.pid = -1;
    std::string description = DescribeWorkerExit(status);

    if (shard.kill_sent) {
      // Our own hang kill: not a site's fault, so the quarantine streak
      // resets, but the no-progress failure streak still applies.
      tracker.Reset(index);
      size_t journaled = FileSize(opt.journal_paths[index]);
      shard.failures = journaled > shard.journal_size ? 1 : shard.failures + 1;
      shard.journal_size = journaled;
      if (draining) {
        shard.phase = ShardState::Phase::kFailed;
      } else if (shard.failures >= opt.retry.max_attempts) {
        shard.phase = ShardState::Phase::kFailed;
        permanent_error = "shard " + std::to_string(index) + " hung " +
                          std::to_string(shard.failures) + " time(s) in a row without progress";
      } else {
        schedule_restart(index);
      }
      return;
    }

    switch (ClassifyWorkerExit(status)) {
      case WorkerExitClass::kSuccess:
        shard.phase = ShardState::Phase::kDone;
        result.shards[index].completed = true;
        totals.completed += 1;
        tracker.Reset(index);
        logf("supervisor: shard %zu completed\n", index);
        return;
      case WorkerExitClass::kInterrupted:
        if (draining) {
          // Drained exactly as asked; stays incomplete for the resume.
          shard.phase = ShardState::Phase::kFailed;
          logf("supervisor: shard %zu drained (%s)\n", index, description.c_str());
          return;
        }
        break;  // an externally signaled worker is just a crash to us
      case WorkerExitClass::kPermanent:
        shard.phase = ShardState::Phase::kFailed;
        permanent_error = "shard " + std::to_string(index) + " failed permanently (" +
                          description + "); not restarting";
        logf("supervisor: shard %zu pid exited: %s — permanent, aborting run\n", index,
             description.c_str());
        return;
      case WorkerExitClass::kRetryable:
        break;
    }

    // Retryable crash.
    ++shard.crashes;
    ++result.shards[index].crashes;
    totals.crashes += 1;
    logf("supervisor: shard %zu crashed: %s\n", index, description.c_str());
    if (draining) {
      shard.phase = ShardState::Phase::kFailed;
      return;
    }

    JournalFileData data;
    std::string error;
    std::optional<std::pair<size_t, size_t>> suspect;
    size_t journaled = 0;
    if (ReadJournalFile(opt.journal_paths[index], &data, &error)) {
      suspect = NextPendingSite(data);
      journaled = data.cohorts.size() + data.sites.size() + data.quarantines.size();
    }
    // (An unreadable/absent journal counts as zero progress with no suspect.)

    if (tracker.ObserveCrash(index, suspect, journaled)) {
      JournalQuarantineRecord record;
      record.cohort_ordinal = suspect->first;
      record.site_index = suspect->second;
      record.crashes = tracker.Blames(index);
      record.signature = description;
      std::string append_error;
      if (AppendQuarantineRecord(opt.journal_paths[index], record, &append_error)) {
        logf("supervisor: shard %zu quarantined site %zu of cohort %zu after %zu "
             "crash(es): %s\n",
             index, record.site_index, record.cohort_ordinal, record.crashes,
             record.signature.c_str());
        result.quarantines.push_back(record);
        totals.quarantined += 1;
        tracker.Reset(index);
        shard.failures = 0;  // the quarantine unblocks the shard
      } else {
        logf("supervisor: shard %zu quarantine append failed: %s\n", index,
             append_error.c_str());
      }
    }

    shard.failures = journaled > shard.journaled_at_crash ? 1 : shard.failures + 1;
    shard.journaled_at_crash = journaled;
    if (shard.failures >= opt.retry.max_attempts) {
      shard.phase = ShardState::Phase::kFailed;
      permanent_error = "shard " + std::to_string(index) + " crashed " +
                        std::to_string(shard.failures) +
                        " time(s) in a row without progress (last: " + description + ")";
      return;
    }
    schedule_restart(index);
  };

  while (true) {
    double now = MonotonicSeconds();

    if (ShutdownRequested() && !draining) {
      begin_drain("shutdown requested");
      result.interrupted = true;
    }
    if (!permanent_error.empty() && !draining) {
      begin_drain("permanent worker error");
    }

    // Reap every exited worker.
    while (true) {
      int status = 0;
      pid_t pid = waitpid(-1, &status, WNOHANG);
      if (pid <= 0) {
        break;
      }
      for (size_t i = 0; i < shards.size(); ++i) {
        if (shards[i].pid == pid) {
          handle_exit(i, status);
          break;
        }
      }
    }

    size_t running = 0, done = 0, backoff = 0;
    for (const ShardState& shard : shards) {
      running += shard.phase == ShardState::Phase::kRunning ? 1 : 0;
      done += shard.phase == ShardState::Phase::kDone ? 1 : 0;
      backoff += shard.phase == ShardState::Phase::kBackoff ? 1 : 0;
    }
    if (done == shards.size()) {
      break;  // success
    }
    if (running == 0 && (draining || (backoff == 0 && !permanent_error.empty()))) {
      break;  // drained, or permanently failed with nothing left to reap
    }

    // Launch due shards.
    if (!draining) {
      for (size_t i = 0; i < shards.size(); ++i) {
        if (shards[i].phase == ShardState::Phase::kBackoff && now >= shards[i].next_launch) {
          launch(i);
        }
      }
    }

    // Heartbeat sweep: progress on either file proves liveness; silence past
    // the deadline means a wedged (or SIGSTOPped) worker.
    for (size_t i = 0; i < shards.size(); ++i) {
      ShardState& shard = shards[i];
      if (shard.phase != ShardState::Phase::kRunning || shard.kill_sent) {
        continue;
      }
      uint64_t journal_size = FileSize(opt.journal_paths[i]);
      uint64_t heartbeat_size = FileSize(heartbeat_path(i));
      if (journal_size != shard.journal_size || heartbeat_size != shard.heartbeat_size) {
        shard.journal_size = journal_size;
        shard.heartbeat_size = heartbeat_size;
        shard.last_activity = now;
      } else if (opt.hang_timeout > 0 && now - shard.last_activity > opt.hang_timeout) {
        logf("supervisor: shard %zu pid %d hung (no heartbeat for %.1fs); killing\n", i,
             static_cast<int>(shard.pid), now - shard.last_activity);
        ++shard.hang_kills;
        ++result.shards[i].hang_kills;
        ++result.hang_kills;
        totals.hang_kills += 1;
        shard.kill_sent = true;
        kill(shard.pid, SIGKILL);
        kill(shard.pid, SIGCONT);  // a stopped process must resume to die
      }
    }

    if (opt.stats != nullptr && now >= next_stats) {
      emit_stats(now);
      next_stats = now + (opt.stats_interval > 0 ? opt.stats_interval : 1.0);
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(opt.poll_interval));
  }

  emit_stats(MonotonicSeconds());

  result.ok = true;
  for (const ShardState& shard : shards) {
    result.ok = result.ok && shard.phase == ShardState::Phase::kDone;
  }
  if (!result.ok && !result.interrupted) {
    result.error = permanent_error.empty() ? "supervised run did not complete" : permanent_error;
  }
  return result;
}

}  // namespace mfc
