#include "src/core/coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/core/sync_scheduler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/stats.h"

namespace mfc {

StageObjects SelectStageObjects(const ContentProfile& profile, bool unique_queries) {
  StageObjects objects;
  objects.base_page = profile.base_page;
  if (const DiscoveredObject* large = profile.PickLargeObject()) {
    objects.large_object = large->url;
  }
  if (const DiscoveredObject* query = profile.PickSmallQuery()) {
    objects.small_query = query->url;
  }
  objects.small_query_unique = unique_queries;
  return objects;
}

Coordinator::Coordinator(ClientHarness& harness, ExperimentConfig config, uint64_t seed)
    : harness_(harness), config_(config), rng_(seed) {}

SpanId Coordinator::BeginSpan(const char* name, SpanId parent) {
  if (telemetry_ == nullptr || telemetry_->tracer == nullptr) {
    return 0;
  }
  return telemetry_->tracer->StartSpan(name, "coord", parent, harness_.Now());
}

void Coordinator::EndSpan(SpanId id) {
  if (id != 0) {
    telemetry_->tracer->EndSpan(id, harness_.Now());
  }
}

void Coordinator::SetMeasurers(std::vector<MeasurerSpec> measurers) {
  measurers_ = std::move(measurers);
}

double Coordinator::MetricPercentile(StageKind kind) const {
  // Large Object demands that 90% of clients observe the degradation (the
  // 10th percentile must exceed θ) so congestion at shared remote
  // bottlenecks — which only some clients sit behind — is not mistaken for
  // the server's access link (Section 2.2.3).
  return kind == StageKind::kLargeObject ? config_.large_object_percentile
                                         : config_.default_percentile;
}

HttpRequest Coordinator::RequestFor(StageKind kind, const StageObjects& objects,
                                    size_t client_id) const {
  switch (kind) {
    case StageKind::kBase:
      return HttpRequest::For(HttpMethod::kHead, *objects.base_page);
    case StageKind::kLargeObject:
      // Every client requests the same large object: server-side caching then
      // keeps the storage sub-system out of the picture (Section 2.2.2).
      return HttpRequest::For(HttpMethod::kGet, *objects.large_object);
    case StageKind::kSmallQuery: {
      Url url = *objects.small_query;
      if (objects.small_query_unique) {
        // A unique dynamically generated object per client. Stable across
        // epochs so the base measurement normalizes the same request.
        std::string param = "mfc=" + std::to_string(client_id);
        url.query = url.query.empty() ? param : url.query + "&" + param;
      }
      return HttpRequest::For(HttpMethod::kGet, url);
    }
  }
  return HttpRequest::For(HttpMethod::kGet, *objects.base_page);
}

std::vector<Coordinator::ClientState> Coordinator::PrepareClients(
    StageKind kind, const StageObjects& objects, const std::vector<size_t>& registered) {
  std::vector<ClientState> clients;
  clients.reserve(registered.size());
  for (size_t id : registered) {
    ClientState state;
    state.id = id;
    state.coord_rtt = harness_.MeasureCoordRtt(id);
    state.target_rtt = harness_.MeasureTargetRtt(id);
    // Base response time, measured sequentially so clients do not perturb
    // each other (Section 2.2.3).
    RequestSample base = harness_.FetchOnce(id, RequestFor(kind, objects, id));
    state.base_response_time = base.response_time;
    state.usable = !base.timed_out && IsSuccess(base.code);
    clients.push_back(state);
  }
  return clients;
}

EpochResult Coordinator::RunEpoch(StageKind kind, const StageObjects& objects,
                                  std::vector<ClientState>& clients, size_t crowd_size,
                                  bool check_phase) {
  EpochResult result;
  result.crowd_size = crowd_size;
  result.check_phase = check_phase;
  SpanId epoch_span = BeginSpan("epoch", epoch_parent_);

  // Random participant selection (Figure 2a) decouples the measured medians
  // from any one client's local conditions. Measurer hosts never join the
  // crowd: they must observe it from outside.
  std::vector<ClientState*> usable;
  for (ClientState& c : clients) {
    bool is_measurer = false;
    for (const MeasurerSpec& m : measurers_) {
      if (m.client_id == c.id) {
        is_measurer = true;
      }
    }
    if (c.usable && c.healthy && !is_measurer) {
      usable.push_back(&c);
    }
  }
  rng_.Shuffle(usable.begin(), usable.end());
  size_t per_client = std::max<size_t>(1, config_.requests_per_client);
  size_t wanted_clients = (crowd_size + per_client - 1) / per_client;
  size_t n = std::min(wanted_clients, usable.size());

  std::vector<ClientLatencyEstimate> latencies;
  latencies.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    latencies.push_back(ClientLatencyEstimate{usable[i]->id, usable[i]->coord_rtt,
                                              usable[i]->target_rtt});
  }
  for (const MeasurerSpec& m : measurers_) {
    latencies.push_back(ClientLatencyEstimate{m.client_id, 0.0, 0.0});
  }

  SimTime arrival = harness_.Now() + std::max(config_.schedule_lead, RequiredLead(latencies));
  std::vector<DispatchTime> dispatch =
      ComputeDispatchTimes(latencies, arrival, config_.stagger_spacing);

  std::vector<CrowdRequestPlan> plans;
  plans.reserve(n + measurers_.size());
  for (size_t i = 0; i < n; ++i) {
    CrowdRequestPlan plan;
    plan.client_id = usable[i]->id;
    plan.request = RequestFor(kind, objects, usable[i]->id);
    plan.command_send_time = dispatch[i].command_send_time;
    plan.intended_arrival = dispatch[i].intended_arrival;
    plan.connections = per_client;
    plans.push_back(std::move(plan));
  }
  for (size_t i = 0; i < measurers_.size(); ++i) {
    CrowdRequestPlan plan;
    plan.client_id = measurers_[i].client_id;
    plan.request = measurers_[i].request;
    plan.command_send_time = dispatch[n + i].command_send_time;
    plan.intended_arrival = dispatch[n + i].intended_arrival;
    plan.connections = 1;
    plans.push_back(std::move(plan));
  }

  // All requests start by ~arrival and settle within the kill timer; poll
  // shortly after (Figure 2a: "Wait 10s after all clients are scheduled,
  // then poll each client").
  SimTime last_arrival =
      arrival + config_.stagger_spacing * static_cast<double>(latencies.size());
  SimTime poll = last_arrival + config_.request_timeout + Seconds(1);
  std::vector<RequestSample> raw = harness_.ExecuteCrowd(plans, poll);

  // Normalize against per-client base response times; separate measurers.
  std::map<size_t, SimDuration> base_by_client;
  for (size_t i = 0; i < n; ++i) {
    base_by_client[usable[i]->id] = usable[i]->base_response_time;
  }
  std::vector<RequestSample> measurer_out;
  std::vector<double> normalized;
  for (RequestSample& sample : raw) {
    auto it = base_by_client.find(sample.client_id);
    if (it == base_by_client.end()) {
      measurer_out.push_back(sample);
      continue;
    }
    sample.normalized = sample.response_time - it->second;
    normalized.push_back(sample.normalized);
    result.samples.push_back(sample);
  }
  if (!measurers_.empty()) {
    measurer_samples_.push_back(std::move(measurer_out));
  }

  result.samples_received = result.samples.size();
  result.samples_expected = n * per_client;
  result.metric = Percentile(normalized, MetricPercentile(kind));
  result.exceeded_threshold = result.metric > config_.threshold;

  // Health accounting for the participants: a miss is an epoch contributing
  // no sample at all (control plane silent) or nothing but timeouts. After
  // evict_after_misses consecutive misses the client is marked unhealthy and
  // drops out of the usable pool — spares take its place next epoch.
  std::map<size_t, size_t> got;
  std::map<size_t, size_t> ok;
  for (const RequestSample& sample : result.samples) {
    ++got[sample.client_id];
    if (!sample.timed_out) {
      ++ok[sample.client_id];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    ClientState& c = *usable[i];
    bool miss = got[c.id] == 0 || ok[c.id] == 0;
    if (miss) {
      ++c.consecutive_misses;
    } else {
      c.consecutive_misses = 0;
    }
    if (config_.evict_after_misses == 0 || !c.healthy) {
      continue;
    }
    // Two eviction triggers, both gated on the same knob: the coordinator's
    // own per-epoch miss count, and the transport's health verdict (for the
    // live harness: consecutive unanswered control probes). The default
    // ClientHealthy is always-true, so simulation behavior is unchanged.
    bool transport_unhealthy = !harness_.ClientHealthy(c.id);
    if (c.consecutive_misses >= config_.evict_after_misses || transport_unhealthy) {
      c.healthy = false;
      if (telemetry_ != nullptr && telemetry_->metrics != nullptr) {
        telemetry_->metrics->Add("coord.clients_evicted");
      }
      if (telemetry_ != nullptr && telemetry_->progress) {
        if (transport_unhealthy && c.consecutive_misses < config_.evict_after_misses) {
          fprintf(stderr, "[mfc] client %zu evicted: control plane unhealthy\n", c.id);
        } else {
          fprintf(stderr, "[mfc] client %zu evicted after %zu consecutive misses\n", c.id,
                  c.consecutive_misses);
        }
      }
    }
  }

  if (telemetry_ != nullptr) {
    if (epoch_span != 0) {
      Tracer& tracer = *telemetry_->tracer;
      tracer.Attr(epoch_span, "crowd", static_cast<uint64_t>(crowd_size));
      tracer.Attr(epoch_span, "samples", static_cast<uint64_t>(result.samples_received));
      tracer.Attr(epoch_span, "metric_ms", ToMillis(result.metric));
      tracer.Attr(epoch_span, "exceeded", std::string(result.exceeded_threshold ? "true" : "false"));
      tracer.Attr(epoch_span, "check_phase", std::string(check_phase ? "true" : "false"));
      EndSpan(epoch_span);
    }
    if (telemetry_->metrics != nullptr) {
      MetricsRegistry& m = *telemetry_->metrics;
      m.Add("coord.epochs");
      if (check_phase) {
        m.Add("coord.check_epochs");
      }
      m.Add("coord.requests_scheduled", static_cast<double>(n * per_client + measurers_.size()));
      m.Add("coord.samples_received", static_cast<double>(result.samples_received));
      m.Observe("coord.epoch_metric_ms", ToMillis(result.metric));
      m.HistObserve("coord.epoch_metric_ms", LatencyBucketEdgesMs(), ToMillis(result.metric));
    }
    if (telemetry_->progress) {
      fprintf(stderr, "[mfc] stage=%s crowd=%zu samples=%zu metric=%.1fms%s%s\n",
              telemetry_->stage.c_str(), crowd_size, result.samples_received,
              ToMillis(result.metric), check_phase ? " [check]" : "",
              result.exceeded_threshold ? " EXCEEDED" : "");
    }
  }
  return result;
}

StageResult Coordinator::RunStage(StageKind kind, const StageObjects& objects,
                                  const std::vector<size_t>& registered) {
  StageResult stage;
  stage.kind = kind;
  stage.started = harness_.Now();

  if (telemetry_ != nullptr) {
    // Publish the stage label so server-side request spans carry it.
    telemetry_->stage = std::string(StageName(kind));
  }
  SpanId stage_span = BeginSpan("stage", experiment_span_);
  if (stage_span != 0) {
    telemetry_->tracer->Attr(stage_span, "name", std::string(StageName(kind)));
  }
  epoch_parent_ = stage_span;

  SpanId prepare_span = BeginSpan("prepare", stage_span);
  std::vector<ClientState> clients = PrepareClients(kind, objects, registered);
  size_t per_client = std::max<size_t>(1, config_.requests_per_client);
  size_t usable = 0;
  for (const ClientState& c : clients) {
    if (c.usable) {
      ++usable;
    }
  }
  if (prepare_span != 0) {
    telemetry_->tracer->Attr(prepare_span, "clients", static_cast<uint64_t>(clients.size()));
    telemetry_->tracer->Attr(prepare_span, "usable", static_cast<uint64_t>(usable));
  }
  EndSpan(prepare_span);
  // The normalized metric of the epoch that decided the stage's fate (the
  // confirming check epoch, or the last epoch seen).
  SimDuration decision_metric = 0.0;

  auto account = [&stage](const EpochResult& epoch) {
    stage.total_requests += epoch.crowd_size;
    stage.max_crowd_tested = std::max(stage.max_crowd_tested, epoch.crowd_size);
  };
  // Evictions shrink the pool mid-stage, so capacity is re-derived per epoch.
  auto usable_capacity = [&clients, per_client] {
    size_t healthy_usable = 0;
    for (const ClientState& c : clients) {
      if (c.usable && c.healthy) {
        ++healthy_usable;
      }
    }
    return healthy_usable * per_client;
  };
  auto below_quorum = [this](const EpochResult& epoch) {
    return config_.epoch_quorum > 0.0 && epoch.samples_expected > 0 &&
           static_cast<double>(epoch.samples_received) <
               config_.epoch_quorum * static_cast<double>(epoch.samples_expected);
  };
  // Runs one epoch; if it falls below the sample quorum, the short epoch is
  // recorded and the crowd is re-run once. |quorum_ok| reports whether the
  // returned (possibly re-run) epoch met quorum — a false means the control
  // plane is too degraded to trust and the stage must end.
  auto run_quorum_epoch = [&](size_t crowd, bool check_phase, bool& quorum_ok) {
    EpochResult epoch = RunEpoch(kind, objects, clients, crowd, check_phase);
    account(epoch);
    if (!below_quorum(epoch)) {
      quorum_ok = true;
      return epoch;
    }
    stage.epochs.push_back(std::move(epoch));
    harness_.WaitUntil(harness_.Now() + config_.epoch_gap);
    if (telemetry_ != nullptr && telemetry_->metrics != nullptr) {
      telemetry_->metrics->Add("coord.epoch_requeues");
    }
    EpochResult rerun = RunEpoch(kind, objects, clients, crowd, check_phase);
    rerun.requeued = true;
    account(rerun);
    quorum_ok = !below_quorum(rerun);
    return rerun;
  };
  auto fail_quorum = [&](const EpochResult& epoch) {
    stage.end_reason = StageEndReason::kQuorumFailed;
    stage.end_detail = "epoch at crowd " + std::to_string(epoch.crowd_size) + " received " +
                       std::to_string(epoch.samples_received) + "/" +
                       std::to_string(epoch.samples_expected) + " samples after re-run";
    if (telemetry_ != nullptr && telemetry_->metrics != nullptr) {
      telemetry_->metrics->Add("coord.quorum_failures");
    }
  };

  for (size_t e = 1; e <= config_.max_epochs; ++e) {
    size_t crowd = config_.crowd_step * e;
    if (crowd > config_.max_crowd || crowd > usable_capacity()) {
      stage.end_detail = "crowd " + std::to_string(crowd) +
                         " exceeds budget or usable-client capacity";
      break;  // ran out of budget or clients: NoStop
    }
    bool quorum_ok = true;
    EpochResult epoch = run_quorum_epoch(crowd, /*check_phase=*/false, quorum_ok);
    bool exceeded = epoch.exceeded_threshold;
    decision_metric = epoch.metric;
    EpochResult quorum_snapshot;
    quorum_snapshot.crowd_size = epoch.crowd_size;
    quorum_snapshot.samples_received = epoch.samples_received;
    quorum_snapshot.samples_expected = epoch.samples_expected;
    stage.epochs.push_back(std::move(epoch));
    harness_.WaitUntil(harness_.Now() + config_.epoch_gap);
    if (!quorum_ok) {
      fail_quorum(quorum_snapshot);
      break;
    }

    if (!exceeded || crowd < config_.min_crowd_for_inference) {
      continue;
    }
    // Check phase: re-run at N-1, N, N+1; any confirmation terminates the
    // stage with stopping size N (Section 2.2.3).
    SpanId check_span = BeginSpan("check_phase", stage_span);
    if (check_span != 0) {
      telemetry_->tracer->Attr(check_span, "candidate_crowd", static_cast<uint64_t>(crowd));
    }
    epoch_parent_ = check_span != 0 ? check_span : stage_span;
    bool confirmed = false;
    bool check_quorum_failed = false;
    for (long delta : {-1L, 0L, 1L}) {
      size_t check_crowd = static_cast<size_t>(static_cast<long>(crowd) + delta);
      bool check_quorum_ok = true;
      EpochResult check = run_quorum_epoch(check_crowd, /*check_phase=*/true, check_quorum_ok);
      bool check_exceeded = check.exceeded_threshold;
      if (check_exceeded) {
        decision_metric = check.metric;
      }
      EpochResult check_snapshot;
      check_snapshot.crowd_size = check.crowd_size;
      check_snapshot.samples_received = check.samples_received;
      check_snapshot.samples_expected = check.samples_expected;
      stage.epochs.push_back(std::move(check));
      harness_.WaitUntil(harness_.Now() + config_.epoch_gap);
      if (!check_quorum_ok) {
        fail_quorum(check_snapshot);
        check_quorum_failed = true;
        break;
      }
      if (check_exceeded) {
        confirmed = true;
        break;
      }
    }
    if (check_span != 0) {
      telemetry_->tracer->Attr(check_span, "confirmed", std::string(confirmed ? "true" : "false"));
    }
    EndSpan(check_span);
    epoch_parent_ = stage_span;
    if (check_quorum_failed) {
      break;
    }
    if (confirmed) {
      stage.stopped = true;
      stage.stopping_crowd_size = crowd;
      stage.end_reason = StageEndReason::kConstraintFound;
      stage.end_detail = "check phase confirmed at crowd " + std::to_string(crowd);
      break;
    }
  }
  stage.finished = harness_.Now();

  if (telemetry_ != nullptr) {
    // Stop decision: an instant span carrying the verdict and the decision
    // metric, so the trace alone explains why the stage ended.
    SpanId decision_span = BeginSpan("stop_decision", stage_span);
    if (decision_span != 0) {
      Tracer& tracer = *telemetry_->tracer;
      tracer.Attr(decision_span, "stopped", std::string(stage.stopped ? "true" : "false"));
      tracer.Attr(decision_span, "end_reason", std::string(StageEndReasonName(stage.end_reason)));
      tracer.Attr(decision_span, "stopping_crowd",
                  static_cast<uint64_t>(stage.stopping_crowd_size));
      tracer.Attr(decision_span, "max_crowd_tested",
                  static_cast<uint64_t>(stage.max_crowd_tested));
      tracer.Attr(decision_span, "decision_metric_ms", ToMillis(decision_metric));
      tracer.Attr(decision_span, "threshold_ms", ToMillis(config_.threshold));
      EndSpan(decision_span);
    }
    if (telemetry_->metrics != nullptr) {
      MetricsRegistry& m = *telemetry_->metrics;
      m.Add("coord.stages");
      if (stage.stopped) {
        m.Add("coord.stages_stopped");
        m.Observe("coord.stopping_crowd", static_cast<double>(stage.stopping_crowd_size));
      }
    }
    if (telemetry_->progress) {
      fprintf(stderr, "[mfc] stage=%s done: %s\n", std::string(StageName(kind)).c_str(),
              stage.stopped ? ("stopped at crowd " + std::to_string(stage.stopping_crowd_size)).c_str()
                            : "NoStop");
    }
    telemetry_->stage = "idle";
  }
  EndSpan(stage_span);
  epoch_parent_ = 0;
  return stage;
}

ExperimentResult Coordinator::Run(const StageObjects& objects) {
  return Run(objects,
             {StageKind::kBase, StageKind::kSmallQuery, StageKind::kLargeObject});
}

ExperimentResult Coordinator::Run(const StageObjects& objects,
                                  const std::vector<StageKind>& stages) {
  ExperimentResult result;
  experiment_span_ = BeginSpan("experiment", 0);
  std::vector<size_t> registered = harness_.ProbeClients(config_.registration_probe_timeout);
  result.registered_clients = registered.size();
  if (experiment_span_ != 0) {
    telemetry_->tracer->Attr(experiment_span_, "registered_clients",
                             static_cast<uint64_t>(registered.size()));
  }
  if (registered.size() < config_.min_clients) {
    result.aborted = true;
    result.abort_reason = "only " + std::to_string(registered.size()) +
                          " clients responsive, need " + std::to_string(config_.min_clients);
    if (experiment_span_ != 0) {
      telemetry_->tracer->Attr(experiment_span_, "aborted", std::string("true"));
    }
    if (telemetry_ != nullptr && telemetry_->metrics != nullptr) {
      telemetry_->metrics->Add("coord.aborted");
    }
    EndSpan(experiment_span_);
    experiment_span_ = 0;
    return result;
  }
  for (StageKind kind : stages) {
    bool available = (kind == StageKind::kBase && objects.base_page.has_value()) ||
                     (kind == StageKind::kSmallQuery && objects.small_query.has_value()) ||
                     (kind == StageKind::kLargeObject && objects.large_object.has_value());
    if (!available) {
      continue;
    }
    result.stages.push_back(RunStage(kind, objects, registered));
  }
  EndSpan(experiment_span_);
  experiment_span_ = 0;
  return result;
}

}  // namespace mfc
