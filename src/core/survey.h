// Cohort surveys (Section 5): run one MFC stage against N sites sampled from
// a cohort and aggregate the paper's stopping-crowd-size breakdown.
//
// Determinism contract: sites are sampled sequentially from Rng(seed) in
// index order (exactly as the historical sequential loop drew them), each
// site's experiment is seeded seed * 1000 + i, and per-site results land in
// index-ordered slots before aggregation — so the breakdown is bit-identical
// for any jobs count, including jobs=1, which reproduces the old sequential
// runner byte for byte.
#ifndef MFC_SRC_CORE_SURVEY_H_
#define MFC_SRC_CORE_SURVEY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/experiment_runner.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace mfc {

class ProgressLine;
class StatsStream;
class SurveyJournal;

// Optional observability for a survey run. Each site experiment gets its own
// private Tracer / MetricsRegistry (its simulation world runs on one worker
// thread); after all tasks finish they are folded into |metrics| and |trace|
// in site-index order, so the merged outputs are byte-identical for any
// --jobs value. In the merged trace each site's spans carry pid = its global
// site index (offset by |next_pid| across successive cohorts).
struct SurveyTelemetry {
  bool collect_trace = false;
  bool collect_metrics = false;
  // Verbose per-site "site k/N ..." lines on stderr as workers finish
  // (unordered under --jobs > 1; purely informational). Off by default —
  // tools expose it as --progress; without it long surveys report through
  // the rate-limited |progress_line| / |stats| below instead.
  bool progress = false;

  // Runtime health plane (DESIGN.md §11): while the cohort runs, a sampler
  // thread periodically captures done/total, sites/sec, ETA, journal lag and
  // per-worker state, feeding the JSONL |stats| stream and/or the single
  // redrawn terminal |progress_line|. Both null = sampler never starts and
  // the run is exactly the pre-health-plane code path.
  StatsStream* stats = nullptr;
  ProgressLine* progress_line = nullptr;
  double stats_interval = 1.0;  // wall-clock seconds between samples
  std::string stats_label;      // snapshot label (cohort/run name)

  MetricsRegistry metrics;  // merged, deterministic
  Tracer trace;             // merged, deterministic
  uint64_t next_pid = 0;    // first pid the next survey call will assign

  bool Enabled() const { return collect_trace || collect_metrics; }
  bool HealthAttached() const { return stats != nullptr || progress_line != nullptr; }
};

struct SurveyBreakdown {
  Cohort cohort = Cohort::kRank1To1K;
  size_t servers = 0;
  // Counts by stopping bucket: <=10, 10-20, 20-30, 30-40, 40-50, 50+..max, NoStop.
  size_t b10 = 0, b20 = 0, b30 = 0, b40 = 0, b50 = 0, b50plus = 0, nostop = 0;

  bool operator==(const SurveyBreakdown&) const = default;
};

// Folds one site's result into the breakdown (aborted experiments and
// object-less stages are skipped, matching the paper's "could not run" rows).
void AccumulateBreakdown(SurveyBreakdown& breakdown, const ExperimentResult& result);

// Runs |servers| independent site experiments across |jobs| workers
// (0 = MFC_JOBS env / hardware default; 1 = sequential). When |per_site| is
// non-null it receives the index-ordered per-site results. |telemetry|, when
// non-null and enabled, accumulates merged per-site traces/metrics (see
// SurveyTelemetry).
//
// |journal|, when non-null, makes the run crash-safe: the caller must have
// called journal->BeginCohort for this cohort first. Sites already present
// in the journal replay from it (results and, when collected, telemetry
// shards) instead of executing; every live site is appended + fsynced as it
// completes. Because shards fold in index order either way, a resumed run is
// byte-identical to an uninterrupted one for any --jobs. With a journal the
// run also polls ShutdownRequested(): on a signal, in-flight sites drain,
// unstarted sites are skipped (their per_site slots stay default — ignored
// by AccumulateBreakdown), and journal->interrupted is set.
SurveyBreakdown RunSurveyCohortParallel(Cohort cohort, StageKind stage, size_t servers,
                                        size_t max_crowd, uint64_t seed, size_t jobs,
                                        std::vector<ExperimentResult>* per_site = nullptr,
                                        SurveyTelemetry* telemetry = nullptr,
                                        SurveyJournal* journal = nullptr);

// Sequential wrapper kept for callers that predate the parallel runner.
inline SurveyBreakdown RunSurveyCohort(Cohort cohort, StageKind stage, size_t servers,
                                       size_t max_crowd, uint64_t seed) {
  return RunSurveyCohortParallel(cohort, stage, servers, max_crowd, seed, 1);
}

}  // namespace mfc

#endif  // MFC_SRC_CORE_SURVEY_H_
