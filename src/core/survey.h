// Cohort surveys (Section 5): run one MFC stage against N sites sampled from
// a cohort and aggregate the paper's stopping-crowd-size breakdown.
//
// Determinism contract: site i is a pure function of (seed, cohort, i) —
// provisioning comes from Rng(SiteSampleSeed(seed, cohort, i)) and the
// experiment runs under SiteExperimentSeed(seed, cohort, i), both
// SplitMix64 mixes with no collisions across surveys (DESIGN.md §12) — and
// per-site results land in index-ordered slots before aggregation, so the
// breakdown is bit-identical for any jobs count, any shard partition of the
// index space, and any resume point. SurveyRunOptions::legacy_seeds restores
// the pre-PR-8 scheme (sequential shared-stream sampling, experiment seeds
// seed * 1000 + i — which collide once a cohort crosses 1000 sites) for
// reproducing historical journals and goldens.
#ifndef MFC_SRC_CORE_SURVEY_H_
#define MFC_SRC_CORE_SURVEY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/experiment_runner.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace mfc {

class ProgressLine;
class StatsStream;
class SurveyJournal;

// Optional observability for a survey run. Each site experiment gets its own
// private Tracer / MetricsRegistry (its simulation world runs on one worker
// thread); after all tasks finish they are folded into |metrics| and |trace|
// in site-index order, so the merged outputs are byte-identical for any
// --jobs value. In the merged trace each site's spans carry pid = its global
// site index (offset by |next_pid| across successive cohorts).
struct SurveyTelemetry {
  bool collect_trace = false;
  bool collect_metrics = false;
  // Verbose per-site "site k/N ..." lines on stderr as workers finish
  // (unordered under --jobs > 1; purely informational). Off by default —
  // tools expose it as --progress; without it long surveys report through
  // the rate-limited |progress_line| / |stats| below instead.
  bool progress = false;

  // Runtime health plane (DESIGN.md §11): while the cohort runs, a sampler
  // thread periodically captures done/total, sites/sec, ETA, journal lag and
  // per-worker state, feeding the JSONL |stats| stream and/or the single
  // redrawn terminal |progress_line|. Both null = sampler never starts and
  // the run is exactly the pre-health-plane code path.
  StatsStream* stats = nullptr;
  ProgressLine* progress_line = nullptr;
  double stats_interval = 1.0;  // wall-clock seconds between samples
  std::string stats_label;      // snapshot label (cohort/run name)

  MetricsRegistry metrics;  // merged, deterministic
  Tracer trace;             // merged, deterministic
  uint64_t next_pid = 0;    // first pid the next survey call will assign

  bool Enabled() const { return collect_trace || collect_metrics; }
  bool HealthAttached() const { return stats != nullptr || progress_line != nullptr; }
};

struct SurveyBreakdown {
  Cohort cohort = Cohort::kRank1To1K;
  size_t servers = 0;
  // Counts by stopping bucket: <=10, 10-20, 20-30, 30-40, 40-50, 50+..max, NoStop.
  size_t b10 = 0, b20 = 0, b30 = 0, b40 = 0, b50 = 0, b50plus = 0, nostop = 0;

  bool operator==(const SurveyBreakdown&) const = default;
};

// Folds one site's result into the breakdown (aborted experiments and
// object-less stages are skipped, matching the paper's "could not run" rows).
void AccumulateBreakdown(SurveyBreakdown& breakdown, const ExperimentResult& result);

// How one RunSurveyCohortParallel call partitions and seeds the survey.
// Sharding is by interleaved site index: this process runs global sites i
// with i % shards == shard_index (global index = shard_index + local *
// shards), so every shard samples the load-heavy head and tail of a cohort
// evenly. Per-site seeds, journal records, pids and per_site slots all use
// the GLOBAL index — a k-shard run writes exactly the records a 1-process
// run would, partitioned — which is what makes shard_merge able to rebuild
// the single-process output byte for byte.
struct SurveyRunOptions {
  size_t shards = 1;       // total shard count (1 = unsharded)
  size_t shard_index = 0;  // this process's shard in [0, shards)
  bool legacy_seeds = false;  // pre-PR-8 sampling + seed * 1000 + i seeds
};

// Runs this shard's slice of |servers| independent site experiments across
// |jobs| workers (0 = MFC_JOBS env / hardware default; 1 = sequential).
// Sites stream from SampleSiteAt on demand — no up-front instances vector —
// except under legacy_seeds, whose shared-stream sampling forces
// materialization. When |per_site| is non-null it receives |servers|
// index-ordered slots with this shard's results filled in (other shards'
// slots stay default). |telemetry|, when non-null and enabled, accumulates
// merged per-site traces/metrics (see SurveyTelemetry).
//
// |journal|, when non-null, makes the run crash-safe: the caller must have
// called journal->BeginCohort for this cohort first (with matching shard
// options). Sites already present in the journal replay from it (results
// and, when collected, telemetry shards) instead of executing; every live
// site is appended + fsynced as it completes. Because shards fold in index
// order either way, a resumed run is byte-identical to an uninterrupted one
// for any --jobs. With a journal the run also polls ShutdownRequested(): on
// a signal, in-flight sites drain, unstarted sites are skipped (their
// per_site slots stay default — ignored by AccumulateBreakdown), and
// journal->interrupted is set.
SurveyBreakdown RunSurveyCohortParallel(Cohort cohort, StageKind stage, size_t servers,
                                        size_t max_crowd, uint64_t seed, size_t jobs,
                                        std::vector<ExperimentResult>* per_site = nullptr,
                                        SurveyTelemetry* telemetry = nullptr,
                                        SurveyJournal* journal = nullptr,
                                        const SurveyRunOptions& run = {});

// Sequential wrapper kept for callers that predate the parallel runner.
inline SurveyBreakdown RunSurveyCohort(Cohort cohort, StageKind stage, size_t servers,
                                       size_t max_crowd, uint64_t seed) {
  return RunSurveyCohortParallel(cohort, stage, servers, max_crowd, seed, 1);
}

}  // namespace mfc

#endif  // MFC_SRC_CORE_SURVEY_H_
