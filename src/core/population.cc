#include "src/core/population.h"

#include <algorithm>
#include <cmath>

#include "src/sim/distributions.h"

namespace mfc {
namespace {

// Lognormal capacity-knee distribution: the concurrent-request count at
// which a sub-system adds ~θ to the response time.
struct KneeDist {
  double median;
  double sigma;
};

// Per-cohort provisioning: medians/sigmas are calibrated so the measured
// stopping fractions approximate Figures 7-9 and Tables 4-5 (see
// EXPERIMENTS.md for the paper-vs-measured comparison).
struct CohortSpec {
  KneeDist base;
  KneeDist query;
  KneeDist bandwidth;
  size_t cores;
  size_t threads;
  double weak_fastcgi_prob;  // cheap shared hosting with a forking CGI stack
};

const CohortSpec& SpecFor(Cohort cohort) {
  static const CohortSpec kRank1{{364, 2.0}, {153, 1.6}, {385, 1.8}, 8, 512, 0.0};
  static const CohortSpec kRank2{{159, 1.6}, {81, 1.4}, {103, 1.6}, 4, 512, 0.0};
  static const CohortSpec kRank3{{96, 1.5}, {63, 1.4}, {76, 1.6}, 2, 256, 0.05};
  static const CohortSpec kRank4{{65, 1.5}, {22, 2.0}, {68, 1.6}, 1, 256, 0.10};
  static const CohortSpec kStartup{{60, 1.8}, {39, 1.55}, {69, 1.6}, 2, 256, 0.20};
  static const CohortSpec kPhishing{{37, 0.55}, {23, 1.15}, {45, 1.6}, 1, 128, 0.25};
  switch (cohort) {
    case Cohort::kRank1To1K:
      return kRank1;
    case Cohort::kRank1KTo10K:
      return kRank2;
    case Cohort::kRank10KTo100K:
      return kRank3;
    case Cohort::kRank100KTo1M:
      return kRank4;
    case Cohort::kStartup:
      return kStartup;
    case Cohort::kPhishing:
      return kPhishing;
    case Cohort::kLongTail:
      return kRank4;  // rank-independent fallback; SampleLongTailSite overrides
  }
  return kRank4;
}

double SampleKnee(Rng& rng, const KneeDist& dist) {
  double knee = LognormalDist::FromMedian(dist.median, dist.sigma).Sample(rng);
  return std::clamp(knee, 4.0, 20000.0);
}

double Clamp(double v, double lo, double hi) { return std::clamp(v, lo, hi); }

// The survey's probe large object: fixed 400 KB so the bandwidth knee maps
// cleanly onto link capacity.
constexpr uint64_t kSurveyLargeObjectBytes = 400 * 1024;

SiteSpec SurveySiteSpec() {
  SiteSpec spec;
  spec.page_count = 8;
  spec.image_count = 10;
  spec.binary_count = 2;
  spec.binary_size_min = kSurveyLargeObjectBytes;
  spec.binary_size_max = kSurveyLargeObjectBytes;
  spec.query_endpoint_count = 2;
  spec.query_response_min = 2 * 1024;
  spec.query_response_max = 8 * 1024;
  spec.queries_unique_per_string = true;
  return spec;
}

// Converts knees into concrete resource parameters. With n simultaneous
// requests on c cores, processor sharing gives response ≈ demand * n / c, so
// a θ=100 ms knee at n* means demand ≈ 0.1 * c / n*.
void ApplyKnees(SiteInstance& instance, double theta = 0.100) {
  WebServerConfig& server = instance.server;
  double cores = static_cast<double>(server.cpu_cores) * server.cpu_speed;
  server.request_parse_cpu_s = 4e-4;
  server.head_cpu_s =
      Clamp(theta * cores / instance.base_knee - server.request_parse_cpu_s, 5e-5, 0.08);
  double chain = Clamp(theta * cores / instance.query_knee - server.request_parse_cpu_s,
                       5e-4, 0.3);
  server.cgi_cpu_s = 0.25 * chain;
  server.db.base_query_cpu_s = 0.05 * chain;
  server.db.per_row_cpu_s = 4e-6;
  server.db.disk_miss_fraction = 0.0;
  // Typical dynamic endpoints recompute on every hit; without this, the base
  // response-time measurements would warm the result cache for the exact
  // per-client URLs the epochs then re-request, hiding the back-end cost.
  server.db.query_cache_bytes = 0.0;
  uint64_t rows = static_cast<uint64_t>(0.70 * chain / server.db.per_row_cpu_s);
  instance.site.query_rows_min = std::max<uint64_t>(rows, 50);
  instance.site.query_rows_max = std::max<uint64_t>(rows, 50);
  // Empirical knee->capacity mapping for the 400 KB probe object over the
  // wide-area fleet (slow start absorbs much of the contention, so the naive
  // size*knee/theta formula overshoots by ~8x): measured stopping size is
  // about 2x the link capacity in MB/s.
  instance.server_access_bps = Clamp(instance.bandwidth_knee * 0.5e6, 1.5e6, 4.0e9);
}

}  // namespace

std::string_view CohortName(Cohort cohort) {
  switch (cohort) {
    case Cohort::kRank1To1K:
      return "Quantcast 1-1K";
    case Cohort::kRank1KTo10K:
      return "Quantcast 1K-10K";
    case Cohort::kRank10KTo100K:
      return "Quantcast 10K-100K";
    case Cohort::kRank100KTo1M:
      return "Quantcast 100K-1M";
    case Cohort::kStartup:
      return "Startup";
    case Cohort::kPhishing:
      return "Phishing";
    case Cohort::kLongTail:
      return "Long tail";
  }
  return "Unknown";
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

// Chains the triple through three finalizer rounds; |domain| separates
// otherwise-identical triples used for different purposes.
uint64_t MixSeedTriple(uint64_t seed, uint64_t cohort, uint64_t index, uint64_t domain) {
  uint64_t h = SplitMix64(seed ^ domain);
  h = SplitMix64(h ^ cohort);
  return SplitMix64(h ^ index);
}

// ASCII "mfc-expr" / "mfc-samp": stable, greppable domain constants.
constexpr uint64_t kExperimentDomain = 0x6d66632d65787072ULL;
constexpr uint64_t kSampleDomain = 0x6d66632d73616d70ULL;

}  // namespace

uint64_t SiteExperimentSeed(uint64_t survey_seed, Cohort cohort, uint64_t index) {
  return MixSeedTriple(survey_seed, static_cast<uint64_t>(cohort), index, kExperimentDomain);
}

uint64_t SiteSampleSeed(uint64_t survey_seed, Cohort cohort, uint64_t index) {
  return MixSeedTriple(survey_seed, static_cast<uint64_t>(cohort), index, kSampleDomain);
}

SiteInstance SampleSiteAt(uint64_t survey_seed, Cohort cohort, size_t index) {
  Rng rng(SiteSampleSeed(survey_seed, cohort, index));
  if (cohort == Cohort::kLongTail) {
    return SampleLongTailSite(rng, index + 1);
  }
  return SampleSite(rng, cohort);
}

SiteInstance SampleLongTailSite(Rng& rng, size_t rank) {
  // Place |rank| in the simulated 100K..1M band; depth in [0, 1] is the
  // log-popularity position within the band (Zipf popularity proxy).
  double absolute_rank = 1e5 + static_cast<double>(rank);
  double depth = Clamp((std::log10(std::min(absolute_rank, 1e6)) - 5.0) / (6.0 - 5.0), 0.0, 1.0);

  // Knee medians decay log-linearly from rank-3-grade provisioning at the
  // band's head to sub-phishing shared hosting at the bottom.
  auto interpolate = [&](double head, double tail) {
    return std::exp(std::log(head) + depth * (std::log(tail) - std::log(head)));
  };
  KneeDist base{interpolate(96, 28), 1.5};
  KneeDist query{interpolate(63, 14), 1.6};
  KneeDist bandwidth{interpolate(76, 32), 1.6};

  SiteInstance instance;
  instance.base_knee = SampleKnee(rng, base);
  instance.query_knee = SampleKnee(rng, query);
  instance.bandwidth_knee = SampleKnee(rng, bandwidth);

  // Content is per-site instead of the fixed survey probe spec: lognormal
  // page weights with a Pareto upper tail for the occasional media-heavy
  // site, and only a deep-tail-typical 1-3 dynamic endpoints.
  SiteSpec& site = instance.site;
  site.page_count = static_cast<size_t>(rng.UniformInt(4, 16));
  site.image_count = static_cast<size_t>(rng.UniformInt(6, 30));
  site.binary_count = static_cast<size_t>(rng.UniformInt(1, 3));
  double object_kb = LognormalDist::FromMedian(300.0, 0.7).Sample(rng);
  if (rng.Chance(0.05)) {
    // Pareto(alpha=1.2) tail grafted above the lognormal body.
    object_kb = 800.0 * std::pow(1.0 - rng.NextDouble() * 0.999, -1.0 / 1.2);
  }
  object_kb = Clamp(object_kb, 64.0, 8192.0);
  site.binary_size_min = static_cast<uint64_t>(object_kb * 1024.0);
  site.binary_size_max = site.binary_size_min;
  site.query_endpoint_count = static_cast<size_t>(rng.UniformInt(1, 3));
  site.query_response_min = 1 * 1024;
  site.query_response_max = 16 * 1024;
  site.queries_unique_per_string = true;

  WebServerConfig& server = instance.server;
  server.name = "Long tail";
  server.cpu_cores = depth < 0.5 ? 2 : 1;
  server.worker_threads = depth < 0.5 ? 256 : 128;
  server.db.connection_pool = 48;
  server.db.query_cache_bytes = 16e6;
  server.ram_bytes = 4e9;
  server.base_memory_bytes = 0.5e9;
  server.cgi_model = CgiModel::kFastCgi;
  server.cgi_process_memory_bytes = 8e6;
  // Cheap shared hosting becomes the norm, not the exception, with depth.
  if (rng.Chance(0.05 + 0.25 * depth)) {
    server.ram_bytes = 768e6;
    server.base_memory_bytes = 400e6;
    server.cgi_process_memory_bytes = 24e6;
  }

  // Organic session load: heavy-tailed visitor rate shrinking with depth —
  // the probes share the box with its (few) real users.
  double session_median = 2.0 * std::exp(-3.0 * depth);
  instance.background_rps = Clamp(LognormalDist::FromMedian(session_median, 1.2).Sample(rng),
                                  0.0, 40.0);

  ApplyKnees(instance);
  return instance;
}

SiteInstance SampleSite(Rng& rng, Cohort cohort) {
  if (cohort == Cohort::kLongTail) {
    // No externally-supplied rank (single-site profiles, legacy sampling):
    // draw one log-uniformly over the simulated band.
    double log_rank = rng.NextDouble() * std::log(900000.0);
    return SampleLongTailSite(rng, static_cast<size_t>(std::exp(log_rank)));
  }
  const CohortSpec& spec = SpecFor(cohort);
  SiteInstance instance;
  instance.site = SurveySiteSpec();
  instance.base_knee = SampleKnee(rng, spec.base);
  instance.query_knee = SampleKnee(rng, spec.query);
  instance.bandwidth_knee = SampleKnee(rng, spec.bandwidth);

  WebServerConfig& server = instance.server;
  server.name = std::string(CohortName(cohort));
  server.cpu_cores = spec.cores;
  server.worker_threads = spec.threads;
  server.db.connection_pool = 48;
  server.db.query_cache_bytes = 16e6;
  server.ram_bytes = 4e9;
  server.base_memory_bytes = 0.5e9;
  server.cgi_model = CgiModel::kFastCgi;
  server.cgi_process_memory_bytes = 8e6;
  if (rng.Chance(spec.weak_fastcgi_prob)) {
    // Cheap shared hosting: a forking CGI stack on a small-memory box. The
    // memory blow-up (Figure 6) then dominates the query knee.
    server.ram_bytes = 768e6;
    server.base_memory_bytes = 400e6;
    server.cgi_process_memory_bytes = 24e6;
  }
  ApplyKnees(instance);
  return instance;
}

SiteInstance MakeLabValidationProfile() {
  // Section 3.2: Apache 2.2 (worker MPM) on a 3 GHz P4, 1 GB RAM; MySQL with
  // a 16 MB query cache; a 100 KB object; a query retrieving 50,000 rows and
  // returning under 100 B; a 100 Mbit/s access link.
  SiteInstance instance;
  instance.site = SiteSpec{};
  instance.site.page_count = 4;
  instance.site.image_count = 4;
  instance.site.binary_count = 1;
  instance.site.binary_size_min = 100 * 1024;
  instance.site.binary_size_max = 100 * 1024;
  instance.site.query_endpoint_count = 1;
  instance.site.query_response_min = 100;
  instance.site.query_response_max = 100;
  instance.site.query_rows_min = 50'000;
  instance.site.query_rows_max = 50'000;
  instance.site.queries_unique_per_string = false;  // "clients make the same query"

  WebServerConfig& server = instance.server;
  server.name = "lab-apache";
  server.cpu_cores = 1;
  server.cpu_speed = 1.0;
  server.worker_threads = 256;
  // A 3 GHz P4 shrugs off per-request CPU: the lab knees come from the
  // access link (Fig 5) and FastCGI memory (Fig 6), not from raw cycles.
  server.request_parse_cpu_s = 1e-4;
  server.head_cpu_s = 1e-4;
  server.ram_bytes = 1e9;
  server.base_memory_bytes = 200e6;
  // Thrashing on a 2007-era IDE-disk box is brutal; this reproduces the
  // Figure 6 response-time blow-up once ~35 forked handlers exceed RAM.
  server.swap_penalty = 40.0;
  server.cgi_model = CgiModel::kFastCgi;
  server.cgi_process_memory_bytes = 24e6;
  server.cgi_cpu_s = 1e-4;
  server.mongrel_pool = 16;
  server.db.connection_pool = 64;
  server.db.base_query_cpu_s = 1e-4;
  server.db.per_row_cpu_s = 4e-6;  // 50k rows -> 200 ms per cache miss
  server.db.query_cache_bytes = 16e6;
  server.db.disk_miss_fraction = 0.02;
  instance.server_access_bps = 12.5e6;  // 100 Mbit/s
  return instance;
}

SiteInstance MakeQtnpProfile() {
  // Section 4.1 QTNP: identical content to a top-50 production system but a
  // single lightly-used box; Base degraded at 20-25 requests (a surprise to
  // the operators), Small Query at 45-55, Large Object never (well past 150).
  SiteInstance instance;
  instance.site = SurveySiteSpec();
  instance.base_knee = 20;
  instance.query_knee = 52;
  instance.bandwidth_knee = 1500;

  WebServerConfig& server = instance.server;
  server.name = "qtnp";
  server.cpu_cores = 2;
  server.worker_threads = 512;
  server.ram_bytes = 8e9;
  server.base_memory_bytes = 1e9;
  server.request_parse_cpu_s = 4e-4;
  // The base page is assembled dynamically even for HEAD: expensive.
  server.head_cpu_s = 11e-3;
  // Queries fan out to a separate (better-provisioned) data tier.
  server.db_dedicated_cores = 2;
  server.cgi_cpu_s = 1.0e-3;
  server.db.base_query_cpu_s = 3e-4;
  server.db.per_row_cpu_s = 4e-6;
  server.db.disk_miss_fraction = 0.0;
  server.db.query_cache_bytes = 0.0;  // the data tier recomputes per hit
  server.db.connection_pool = 64;
  instance.site.query_rows_min = 1400;  // ~5.6 ms of DB work per unique query
  instance.site.query_rows_max = 1400;
  instance.server_access_bps = 600e6;
  return instance;
}

SiteInstance MakeQtpProfile() {
  // QTP: the production deployment — 16 multiprocessor servers behind a load
  // balancer; nothing moved even at 375 concurrent requests.
  SiteInstance instance = MakeQtnpProfile();
  instance.server.name = "qtp";
  instance.server.cpu_cores = 4;
  instance.server.head_cpu_s = 2e-3;  // production front ends are tuned
  instance.replicas = 16;
  instance.server_access_bps = 2e9;
  return instance;
}

SiteInstance MakeUniv1Profile() {
  // Univ-1: a small European research-group server; every stage stopped at
  // 5-25 clients; bandwidth relatively the best-provisioned resource.
  SiteInstance instance;
  instance.site = SurveySiteSpec();
  instance.site.binary_size_min = 300 * 1024;
  instance.site.binary_size_max = 300 * 1024;
  instance.base_knee = 5;
  instance.query_knee = 5;
  instance.bandwidth_knee = 25;

  WebServerConfig& server = instance.server;
  server.name = "univ-1";
  server.cpu_cores = 1;
  server.worker_threads = 64;
  server.request_parse_cpu_s = 5e-4;
  server.head_cpu_s = 19.5e-3;
  server.cgi_cpu_s = 5e-3;
  server.db.base_query_cpu_s = 1e-3;
  server.db.per_row_cpu_s = 4e-6;
  server.db.disk_miss_fraction = 0.0;
  server.db.query_cache_bytes = 0.0;
  instance.site.query_rows_min = 3500;
  instance.site.query_rows_max = 3500;
  instance.server_access_bps = 12.5e6;
  return instance;
}

SiteInstance MakeUniv2Profile() {
  // Univ-2: CS department server behind a 1 Gbps link; every stage stalled
  // around 110-150 concurrent requests — a software-configuration artifact
  // (the config had not changed in years), modelled as O(n) per-connection
  // CPU overhead; hardware otherwise ample.
  SiteInstance instance;
  instance.site = SurveySiteSpec();
  instance.base_knee = 140;
  instance.query_knee = 130;
  instance.bandwidth_knee = 110;

  WebServerConfig& server = instance.server;
  server.name = "univ-2";
  server.cpu_cores = 2;
  server.worker_threads = 512;
  server.ram_bytes = 4e9;  // hardware is ample; the config is the problem
  server.request_parse_cpu_s = 3e-4;
  server.head_cpu_s = 2e-4;
  server.per_connection_cpu_s = 2.3e-5;
  server.cgi_cpu_s = 5e-4;
  server.db.base_query_cpu_s = 3e-4;
  server.db.per_row_cpu_s = 4e-6;
  server.db.disk_miss_fraction = 0.0;
  server.db.query_cache_bytes = 0.0;
  instance.site.query_rows_min = 500;
  instance.site.query_rows_max = 500;
  instance.server_access_bps = 125e6;  // 1 Gbit/s
  return instance;
}

SiteInstance MakeUniv3Profile() {
  // Univ-3: 1.5 GHz Sun V240; adequate base handling (stop 90-110 at
  // θ=250 ms), poor query handling (stop ~30: the legacy stack was not
  // caching dynamic responses), well-provisioned bandwidth; 12-20 req/s of
  // background traffic in the paper's runs.
  SiteInstance instance;
  instance.site = SurveySiteSpec();
  instance.base_knee = 100;
  instance.query_knee = 30;
  instance.bandwidth_knee = 2000;

  WebServerConfig& server = instance.server;
  server.name = "univ-3";
  server.cpu_cores = 2;
  server.cpu_speed = 0.5;
  server.worker_threads = 256;
  server.ram_bytes = 4e9;
  server.request_parse_cpu_s = 5e-4;
  server.head_cpu_s = 2e-3;
  server.cgi_cpu_s = 1e-3;
  server.db.base_query_cpu_s = 3e-4;
  server.db.per_row_cpu_s = 4e-6;
  server.db.query_cache_bytes = 0.0;  // responses never cached
  server.db.disk_miss_fraction = 0.0;
  instance.site.query_rows_min = 1800;
  instance.site.query_rows_max = 1800;
  instance.site.queries_unique_per_string = false;
  instance.server_access_bps = 250e6;
  return instance;
}

SiteStream::SiteStream(Cohort cohort, uint64_t survey_seed, size_t servers, bool legacy_seeds)
    : cohort_(cohort), seed_(survey_seed), servers_(servers), legacy_(legacy_seeds) {
  if (legacy_) {
    // The historical sampler: one shared sequential stream, so site i's draw
    // depends on every draw before it. Must materialize up front.
    Rng rng(seed_);
    legacy_instances_.reserve(servers_);
    for (size_t i = 0; i < servers_; ++i) {
      legacy_instances_.push_back(SampleSite(rng, cohort_));
    }
  }
}

SiteInstance SiteStream::Site(size_t index) const {
  if (legacy_) {
    return legacy_instances_[index];
  }
  return SampleSiteAt(seed_, cohort_, index);
}

uint64_t SiteStream::ExperimentSeed(size_t index) const {
  if (legacy_) {
    return seed_ * 1000 + index;
  }
  return SiteExperimentSeed(seed_, cohort_, index);
}

}  // namespace mfc
