// MFC experiment configuration (the tunables of Sections 2.2-2.3 and the
// extensions of Section 6).
#ifndef MFC_SRC_CORE_CONFIG_H_
#define MFC_SRC_CORE_CONFIG_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/sim/sim_time.h"

namespace mfc {

// Bounded exponential backoff for control-plane operations (client
// registration, coordinator pings, RTT probes, command/sample re-issue).
// Both substrates share this policy object: the live runtime executes it
// against real timers; the simulation's loss model is the scenario it
// defends against.
struct RetryPolicy {
  size_t max_attempts = 4;  // total tries including the first
  SimDuration initial_backoff = Millis(100);
  double multiplier = 2.0;
  SimDuration max_backoff = Seconds(2);

  // Wait after the |attempt|-th try (1-based) before retrying or giving up.
  SimDuration BackoffFor(size_t attempt) const {
    SimDuration backoff = initial_backoff;
    for (size_t i = 1; i < attempt; ++i) {
      backoff = std::min(max_backoff, backoff * multiplier);
    }
    return std::min(backoff, max_backoff);
  }
};

struct ExperimentConfig {
  // Response-time degradation threshold θ. The paper uses 100 ms for the
  // wild studies and 250 ms for cooperating sites that allowed it.
  SimDuration threshold = Millis(100);

  // Crowd-size increment between epochs ("a small value... 5 or 10").
  size_t crowd_step = 5;

  // Hard ceiling on concurrent requests per epoch; reaching it without a
  // confirmed stop yields "NoStop" (the infrastructure is unconstrained at
  // the tested load).
  size_t max_crowd = 50;

  // The coordinator aborts unless this many clients answer its probe within
  // |registration_probe_timeout| (Figure 2a, step 2: "If k < 50, abort").
  size_t min_clients = 50;
  SimDuration registration_probe_timeout = Seconds(1);

  // Epochs smaller than this auto-progress regardless of the measured
  // degradation — medians over fewer clients are not statistically robust.
  size_t min_crowd_for_inference = 15;

  // Successive epochs are separated by ~10 s.
  SimDuration epoch_gap = Seconds(10);

  // Clients kill requests that have not completed after this long and report
  // code=ERR with response time equal to the timeout.
  SimDuration request_timeout = Seconds(10);

  // Lead time between scheduling and the common arrival instant T (the
  // validation runs command clients "15s after taking the latency
  // measurements").
  SimDuration schedule_lead = Seconds(15);

  // MFC-mr (Section 4.1): parallel TCP connections per client, each carrying
  // the same request. 1 = standard MFC.
  size_t requests_per_client = 1;

  // Decision-rule percentiles (Section 2.2.3). A stage stops when the
  // configured percentile of normalized response times exceeds θ. The median
  // (P50 > θ ⟺ at least 50% of clients degraded) is used everywhere except
  // the Large Object stage, which requires 90% of the clients to see the
  // degradation — i.e. P10 > θ — so congestion at shared remote bottlenecks
  // is not mistaken for the server's access link.
  double default_percentile = 50.0;
  double large_object_percentile = 10.0;

  // Staggered MFC (Section 6): when > 0, client arrivals are spaced this far
  // apart instead of synchronized to one instant.
  SimDuration stagger_spacing = 0.0;

  // Safety bound on epochs per stage.
  size_t max_epochs = 200;

  // Small Query uniqueness: append a per-client parameter so each client
  // requests a unique dynamically generated object when the site supports it.
  bool unique_queries = true;

  // Control-plane retry policy (consumed by harnesses that retry, e.g.
  // LiveHarness; the simulated testbed models loss without retransmission).
  RetryPolicy retry;

  // Graceful degradation (Section 3's flaky-client reality). Both knobs
  // default off so the unhardened behaviour is bit-identical.
  //
  // A client that misses (returns no sample, or only timeouts, for) this
  // many consecutive epochs it participated in is marked unhealthy and
  // excluded from later crowds; the crowd is refilled from the remaining
  // registered pool. 0 disables eviction.
  size_t evict_after_misses = 0;
  // Minimum fraction of scheduled samples an epoch must deliver. An epoch
  // below quorum is re-run once; if the re-run is also below quorum the
  // stage terminates with StageEndReason::kQuorumFailed instead of silently
  // deciding on thin data. 0 disables the quorum check.
  double epoch_quorum = 0.0;
};

// Object-classification bounds from Section 2.2.1.
struct ProfileThresholds {
  uint64_t large_object_min_bytes = 100 * 1024;  // >= 100 KB: Large Object
  uint64_t small_query_max_bytes = 15 * 1024;    // < 15 KB: Small Query
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_CONFIG_H_
