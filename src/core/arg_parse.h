// Checked numeric flag parsing shared by tools/ and bench/ front ends.
//
// The historical atoi/atof parsing accepted garbage silently: "--jobs=abc"
// became 0 (hardware default), "--survey=-5" wrapped to a huge size_t, and
// "--max-crowd=20x" dropped the suffix. These helpers require the value to
// consume the whole string and to fit the target type; on failure the caller
// prints one "invalid value" line and exits with a usage error instead of
// running a survey nobody asked for.
#ifndef MFC_SRC_CORE_ARG_PARSE_H_
#define MFC_SRC_CORE_ARG_PARSE_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace mfc {

// Unsigned decimal, full-string, no leading sign (rejects "-1" outright
// rather than wrapping). Empty strings and trailing garbage fail.
inline bool ParseU64Value(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

inline bool ParseSizeValue(const std::string& text, size_t* out) {
  uint64_t v = 0;
  if (!ParseU64Value(text, &v) || v > static_cast<uint64_t>(SIZE_MAX)) {
    return false;
  }
  *out = static_cast<size_t>(v);
  return true;
}

// Finite double, full-string (accepts the usual strtod forms incl. negative
// values; callers wanting non-negative check the result).
inline bool ParseDoubleValue(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  double v = strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

// Flag-oriented wrappers: parse or complain (naming the flag and the exact
// rejected text) and report failure for the caller to bail with usage.
inline bool ParseSizeFlag(const char* flag, const std::string& text, size_t* out) {
  if (!ParseSizeValue(text, out)) {
    fprintf(stderr, "invalid value for %s: '%s' (expected a non-negative integer)\n", flag,
            text.c_str());
    return false;
  }
  return true;
}

inline bool ParseU64Flag(const char* flag, const std::string& text, uint64_t* out) {
  if (!ParseU64Value(text, out)) {
    fprintf(stderr, "invalid value for %s: '%s' (expected a non-negative integer)\n", flag,
            text.c_str());
    return false;
  }
  return true;
}

inline bool ParseDoubleFlag(const char* flag, const std::string& text, double* out) {
  if (!ParseDoubleValue(text, out)) {
    fprintf(stderr, "invalid value for %s: '%s' (expected a number)\n", flag, text.c_str());
    return false;
  }
  return true;
}

}  // namespace mfc

#endif  // MFC_SRC_CORE_ARG_PARSE_H_
