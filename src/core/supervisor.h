// Multi-process survey supervisor (DESIGN.md §14): drives N shard workers to
// completion without operator intervention.
//
// The supervisor forks/execs one worker per shard and watches two signals per
// worker: its process exit status, and a liveness heartbeat formed by growth
// of the files the worker already writes (its journal and, when attached, its
// --stats-stream feed — the survey sampler is a wall-clock thread, so the
// feed grows even while a single long site experiment runs). From those it
// runs a per-shard state machine:
//
//   running → (crash)  backoff → restarting(--resume) → running
//           → (hang)   SIGKILL → backoff → restarting → running
//           → (K same-suspect crashes) quarantining → restarting → running
//           → (exit 0) done                 — all shards done → caller merges
//
// Crash restarts reuse RetryPolicy's bounded exponential backoff with a
// deterministic ±50% jitter derived from (seed, shard, attempt); the
// consecutive-failure counter resets whenever a restart makes journal
// progress, so only a shard that is genuinely stuck exhausts max_attempts.
// A site that crashes its worker K times in a row with no intervening
// progress is poisoned: the supervisor appends a quarantine record to the
// dead worker's journal (AppendQuarantineRecord) and the restarted worker
// skips the site (src/core/survey.cc), surfacing it in the merged report
// instead of wedging the run forever.
//
// Workers that exit with a usage or journal/merge config error (rc 2 / 3 —
// see the README exit-code table) are never restarted: the same argv would
// fail the same way, so the supervisor drains the fleet and reports a
// permanent error. SIGINT/SIGTERM to the supervisor drains all workers
// gracefully (they journal in-flight sites and exit 130) so one resume hint
// covers the whole supervised run.
#ifndef MFC_SRC_CORE_SUPERVISOR_H_
#define MFC_SRC_CORE_SUPERVISOR_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/journal/journal.h"

namespace mfc {

class StatsStream;

// How one worker exit should be treated by the restart policy.
enum class WorkerExitClass {
  kSuccess,      // exit 0: the shard is complete
  kRetryable,    // killed by a signal, or an unexpected exit code
  kPermanent,    // exit 2 (usage), 3 (journal/merge config), 127 (exec
                 // failure): restarting would loop on the same error
  kInterrupted,  // exit 130: the worker drained after a shutdown signal
};

// Classifies a raw waitpid() status.
WorkerExitClass ClassifyWorkerExit(int wait_status);

// Human-readable exit description — "exit 3", "signal 9 (Killed)" — used in
// logs and as the crash signature of quarantine records.
std::string DescribeWorkerExit(int wait_status);

// RetryPolicy's bounded exponential backoff for the |attempt|-th consecutive
// failure (1-based), scaled by a jitter factor in [0.5, 1.5) derived
// deterministically from (seed, shard, attempt) — crashing shards spread
// their restarts instead of thundering back in lockstep, and tests can pin
// the exact schedule. Returns seconds.
double SupervisorBackoffSeconds(const RetryPolicy& policy, size_t attempt, uint64_t seed,
                                size_t shard);

// The prime suspect for a worker crash: the lowest-indexed site of the
// journal's earliest incomplete cohort that is neither journaled nor
// quarantined — exactly the site a --jobs=1 worker was executing when it
// died (with more jobs, the earliest of the sites possibly in flight).
// nullopt when the journal holds no cohort record yet (the worker died in
// startup — nothing to blame) or every site is accounted for.
std::optional<std::pair<size_t, size_t>> NextPendingSite(const JournalFileData& data);

// Consecutive-crash bookkeeping behind quarantine decisions. A crash blames
// its shard's current suspect; the blame count grows only while the suspect
// stays identical AND the journal made no progress between crashes (any new
// durable record means the previous execution got further, so the suspect is
// not reliably poisoned). ObserveCrash returns true when the suspect has now
// been blamed |quarantine_after| consecutive times — the caller should then
// quarantine it and Reset the shard.
class QuarantineTracker {
 public:
  explicit QuarantineTracker(size_t shards, size_t quarantine_after);

  // |journaled| is any monotone progress measure of the shard's journal
  // (e.g. site records + quarantine records). Returns true when |suspect|
  // should be quarantined now.
  bool ObserveCrash(size_t shard, std::optional<std::pair<size_t, size_t>> suspect,
                    size_t journaled);
  // Clears the shard's blame streak (after success, a hang kill — not a
  // site's fault — or an applied quarantine).
  void Reset(size_t shard);

  size_t Blames(size_t shard) const { return states_[shard].count; }

 private:
  struct State {
    bool valid = false;
    std::pair<size_t, size_t> suspect{0, 0};
    size_t journaled = 0;
    size_t count = 0;
  };
  size_t quarantine_after_;
  std::vector<State> states_;
};

struct SupervisorOptions {
  size_t shards = 1;
  // Builds the worker argv for one shard (argv[0] must be an executable
  // path); invoked on every launch, including restarts. Workers must resume
  // from their journals, so the same argv is correct every time.
  std::function<std::vector<std::string>(size_t shard)> command;
  // One journal path per shard (required): progress + quarantine target.
  std::vector<std::string> journal_paths;
  // Optional worker --stats-stream paths: their growth is the heartbeat that
  // distinguishes "slow site" from "wedged worker".
  std::vector<std::string> heartbeat_paths;
  // Optional per-shard files capturing worker stdout+stderr (append mode).
  std::vector<std::string> log_paths;
  // Backoff schedule between restarts; max_attempts bounds *consecutive*
  // no-progress failures per shard before the run is declared stuck.
  RetryPolicy retry{.max_attempts = 8};
  // A live worker whose journal and heartbeat files both stop growing for
  // this long is considered hung and SIGKILLed (then restarted).
  double hang_timeout = 30.0;
  // Consecutive same-suspect crashes before that site is quarantined.
  size_t quarantine_after = 3;
  // Derives backoff jitter; also reported in logs for reproducibility.
  uint64_t seed = 1;
  double poll_interval = 0.05;  // seconds between monitor sweeps
  // Optional supervisor health feed: one snapshot per |stats_interval| with
  // supervisor.* counter deltas (source "supervisor").
  StatsStream* stats = nullptr;
  double stats_interval = 1.0;
  // Event lines ("shard 0 pid 123 started (attempt 1)" …); null silences.
  FILE* log = stderr;
};

struct SupervisorShardStatus {
  size_t launches = 0;
  size_t crashes = 0;
  size_t hang_kills = 0;
  bool completed = false;
};

struct SupervisorResult {
  bool ok = false;
  // True when a shutdown signal drained the run (the caller should print a
  // resume hint and exit 130).
  bool interrupted = false;
  std::string error;  // set when !ok && !interrupted
  size_t restarts = 0;   // relaunches beyond each shard's first start
  size_t hang_kills = 0;
  std::vector<JournalQuarantineRecord> quarantines;  // appended this run
  std::vector<SupervisorShardStatus> shards;
};

// Owns the whole supervised run. Installs the shared shutdown handlers
// (SIGINT/SIGTERM) for the duration of Run().
class SurveySupervisor {
 public:
  explicit SurveySupervisor(SupervisorOptions options);

  // Blocks until every shard completed, a permanent error surfaced, or a
  // shutdown signal drained the fleet.
  SupervisorResult Run();

 private:
  SupervisorOptions options_;
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_SUPERVISOR_H_
