// Shard-merge: fold the journals written by a sharded survey (DESIGN.md §12)
// back into the outputs a single-process run would have produced.
//
// A k-shard survey runs the same global site index space as an unsharded one,
// interleaved: shard j executes sites {j, j+k, j+2k, ...} and journals each
// with its GLOBAL index, seed and merged-trace pid. That makes the k shard
// journals exactly a partition of the records one process would have written
// — so merging is validation plus an index-ordered fold, no re-execution:
//
//   1. every journal parses, and all carry the same tool + fingerprint;
//   2. per cohort ordinal, the shards' cohort records agree on everything
//      except shard_index, and the shard_index values are exactly 0..k-1;
//   3. every global site of every cohort is present in its owning shard
//      (a gap means that shard was interrupted — resume it first), with one
//      legal exception: a site covered by a quarantine record (DESIGN.md
//      §14) was deliberately skipped and is surfaced in the merged report
//      instead of failing the merge. A shard with a cohort record but zero
//      site records is classified "resumable, zero progress" — a worker
//      that died between BeginCohort and its first site, not corruption;
//   4. sites fold in (ordinal, global index) order: breakdown accumulation,
//      metrics Merge, trace MergeFrom at the journaled pid — the same walk
//      RunSurveyCohortParallel does, so the outputs are byte-identical.
#ifndef MFC_SRC_CORE_SHARD_MERGE_H_
#define MFC_SRC_CORE_SHARD_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/journal/journal.h"
#include "src/core/survey.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace mfc {

// One merged survey: everything a single-process run at the same seed would
// have in hand after its cohorts finished.
struct ShardMergeResult {
  std::string tool;
  std::string fingerprint;
  // Cohort parameters in ordinal order (shard_index rewritten to 0,
  // shards to 1 — the merged view is an unsharded run).
  std::vector<JournalCohortRecord> cohorts;
  // Per cohort: breakdown + per-site results in global index order.
  std::vector<SurveyBreakdown> breakdowns;
  std::vector<std::vector<ExperimentResult>> per_site;
  // Per cohort: quarantined sites in global index order. Their per_site
  // slots stay default-constructed (excluded from the breakdown), mirroring
  // what the surviving worker computed.
  std::vector<std::vector<JournalQuarantineRecord>> quarantined;
  // Folded telemetry; empty when the shards recorded none.
  MetricsRegistry metrics;
  Tracer trace;
  bool has_trace = false;
  bool has_metrics = false;
};

// Merges the shard journals at |paths| (one per shard, any order). Returns
// false and fills |error| when the shards are inconsistent or incomplete;
// a missing site names the journal to resume. |out| is only valid on success.
bool MergeShardJournals(const std::vector<std::string>& paths, ShardMergeResult* out,
                        std::string* error);

// Canonical single-cohort survey report. Both a single-process
// `mfc_profile --survey --json` run and `mfc_profile --merge` build their
// report through this function, which is what makes "merged output is
// byte-identical to the unsharded run" checkable with a plain byte compare.
struct SurveyReportInput {
  std::string cohort_name;
  int stage = 0;
  size_t servers = 0;
  size_t max_crowd = 0;
  uint64_t seed = 0;
  bool legacy_seeds = false;
  SurveyBreakdown breakdown;
  // Per-site results in global index order, exactly |servers| entries.
  const std::vector<ExperimentResult>* per_site = nullptr;
  // Sites excluded by supervisor quarantine, in global index order. The
  // report gains a "quarantined_sites" array only when non-empty, so
  // quarantine-free runs stay byte-identical to earlier versions.
  const std::vector<JournalQuarantineRecord>* quarantined = nullptr;
};
std::string BuildSurveyReportJson(const SurveyReportInput& input);

}  // namespace mfc

#endif  // MFC_SRC_CORE_SHARD_MERGE_H_
