#include "src/core/types.h"

namespace mfc {

std::string_view StageName(StageKind kind) {
  switch (kind) {
    case StageKind::kBase:
      return "Base";
    case StageKind::kSmallQuery:
      return "SmallQuery";
    case StageKind::kLargeObject:
      return "LargeObject";
  }
  return "Unknown";
}

std::string_view StageEndReasonName(StageEndReason reason) {
  switch (reason) {
    case StageEndReason::kConstraintFound:
      return "ConstraintFound";
    case StageEndReason::kNoStop:
      return "NoStop";
    case StageEndReason::kQuorumFailed:
      return "QuorumFailed";
  }
  return "Unknown";
}

const StageResult* ExperimentResult::Stage(StageKind kind) const {
  for (const StageResult& stage : stages) {
    if (stage.kind == kind) {
      return &stage;
    }
  }
  return nullptr;
}

uint64_t ExperimentResult::TotalRequests() const {
  uint64_t total = 0;
  for (const StageResult& stage : stages) {
    total += stage.total_requests;
  }
  return total;
}

}  // namespace mfc
