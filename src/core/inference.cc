#include "src/core/inference.h"

#include <algorithm>
#include <cstdio>

namespace mfc {
namespace {

std::string FormatMs(SimDuration d) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.0f ms", ToMillis(d));
  return buf;
}

SubsystemAssessment Assess(const StageResult& stage, const ExperimentConfig& config) {
  SubsystemAssessment a;
  a.stage = stage.kind;
  a.constrained = stage.stopped;
  a.stopping_crowd_size = stage.stopping_crowd_size;
  a.max_crowd_tested = stage.max_crowd_tested;
  for (const EpochResult& epoch : stage.epochs) {
    a.worst_metric = std::max(a.worst_metric, epoch.metric);
  }
  std::string subsystem(SubsystemFor(stage.kind));
  if (stage.stopped) {
    a.summary = subsystem + ": constrained — response time degraded by more than " +
                FormatMs(config.threshold) + " at " + std::to_string(a.stopping_crowd_size) +
                " simultaneous requests (confirmed by check phase)";
  } else {
    a.summary = subsystem + ": no constraint inferred up to " +
                std::to_string(a.max_crowd_tested) + " simultaneous requests (worst degradation " +
                FormatMs(a.worst_metric) + ")";
  }
  return a;
}

}  // namespace

std::string_view SubsystemFor(StageKind kind) {
  switch (kind) {
    case StageKind::kBase:
      return "basic HTTP request processing";
    case StageKind::kSmallQuery:
      return "back-end data processing sub-system";
    case StageKind::kLargeObject:
      return "outbound access bandwidth";
  }
  return "unknown sub-system";
}

bool InferenceReport::AnyConstraint() const {
  for (const SubsystemAssessment& a : assessments) {
    if (a.constrained) {
      return true;
    }
  }
  return false;
}

std::string InferenceReport::ToText() const {
  std::string out = "=== MFC inference report ===\n";
  for (const SubsystemAssessment& a : assessments) {
    out += "  [" + std::string(StageName(a.stage)) + "] " + a.summary + "\n";
  }
  if (!notes.empty()) {
    out += "  Observations:\n";
    for (const std::string& note : notes) {
      out += "   - " + note + "\n";
    }
  }
  return out;
}

InferenceReport AnalyzeExperiment(const ExperimentResult& result,
                                  const ExperimentConfig& config) {
  InferenceReport report;
  if (result.aborted) {
    report.notes.push_back("experiment aborted: " + result.abort_reason);
    return report;
  }
  for (const StageResult& stage : result.stages) {
    report.assessments.push_back(Assess(stage, config));
  }

  const StageResult* base = result.Stage(StageKind::kBase);
  const StageResult* query = result.Stage(StageKind::kSmallQuery);
  const StageResult* large = result.Stage(StageKind::kLargeObject);

  if (base != nullptr && large != nullptr && base->stopped && !large->stopped) {
    // The Univ-3 incident diagnosis: Base degrades while Large Object does
    // not, so slow downloads point at request handling, not the pipe.
    report.notes.push_back(
        "Base degrades while Large Object does not: poor performance under "
        "simultaneous downloads is more likely request handling than bandwidth "
        "provisioning");
  }
  if (query != nullptr && query->stopped && large != nullptr && !large->stopped) {
    report.notes.push_back(
        "back-end data processing keels over at " +
        std::to_string(query->stopping_crowd_size) +
        " requests while bandwidth holds: highly vulnerable to simple "
        "application-level (request-flood) attacks on the database path");
  }
  if (query != nullptr && base != nullptr && query->stopped && base->stopped &&
      query->stopping_crowd_size < base->stopping_crowd_size) {
    report.notes.push_back(
        "queries are costlier than base HTTP processing; consider caching "
        "dynamic responses or shaping query traffic");
  }
  bool all_nostop = !report.AnyConstraint() && !report.assessments.empty();
  if (all_nostop) {
    report.notes.push_back(
        "no sub-system showed a confirmed degradation at the tested loads: the "
        "infrastructure is well-provisioned for crowds of this size");
  }
  // "Poorly provisioned overall" needs corroboration from several stages.
  bool all_stopped = report.assessments.size() >= 2;
  for (const SubsystemAssessment& a : report.assessments) {
    all_stopped = all_stopped && a.constrained;
  }
  if (all_stopped) {
    report.notes.push_back(
        "every probed sub-system is constrained at small crowd sizes: the "
        "server is poorly provisioned overall");
  }
  return report;
}

}  // namespace mfc
