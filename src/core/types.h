// Shared value types of the MFC service.
#ifndef MFC_SRC_CORE_TYPES_H_
#define MFC_SRC_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/http/message.h"
#include "src/sim/sim_time.h"

namespace mfc {

// The three probe categories of Section 2.2.2.
enum class StageKind {
  kBase,         // HEAD of the base page: basic HTTP request processing
  kSmallQuery,   // dynamic response < 15 KB: back-end data processing
  kLargeObject,  // static object >= 100 KB: outbound access bandwidth
};

std::string_view StageName(StageKind kind);

// What a client reports to the coordinator after each epoch (Figure 2b:
// client ID, HTTP code, numbytes, response time).
struct RequestSample {
  size_t client_id = 0;
  HttpStatus code = HttpStatus::kOk;
  double bytes = 0.0;
  SimDuration response_time = 0.0;  // capped at the 10 s kill timer
  SimDuration normalized = 0.0;     // response_time - base response time
  bool timed_out = false;
};

// One epoch's outcome as the coordinator saw it.
struct EpochResult {
  size_t crowd_size = 0;  // concurrent requests scheduled (clients x conns)
  size_t samples_received = 0;
  size_t samples_expected = 0;  // what the dispatched plans should deliver
  SimDuration metric = 0.0;  // median (or 90th pct) normalized response time
  bool exceeded_threshold = false;
  bool check_phase = false;  // one of the N-1 / N / N+1 confirmation crowds
  bool requeued = false;     // re-run of an epoch that fell below quorum
  std::vector<RequestSample> samples;
};

// Why a stage ended — an explicit verdict on the control plane's health, not
// just the capacity question.
enum class StageEndReason {
  kConstraintFound,  // check phase confirmed; stopping_crowd_size is valid
  kNoStop,           // crowd budget or client pool exhausted, no constraint
  kQuorumFailed,     // control plane could not sustain the sample quorum
};

std::string_view StageEndReasonName(StageEndReason reason);

// Per-stage verdict.
struct StageResult {
  StageKind kind = StageKind::kBase;
  // True if the check phase confirmed a constraint; false = "NoStop".
  bool stopped = false;
  size_t stopping_crowd_size = 0;  // valid when stopped
  size_t max_crowd_tested = 0;
  StageEndReason end_reason = StageEndReason::kNoStop;
  std::string end_detail;  // human-readable cause (quorum shortfall, ...)
  std::vector<EpochResult> epochs;
  uint64_t total_requests = 0;
  SimTime started = 0.0;
  SimTime finished = 0.0;

  SimDuration Span() const { return finished - started; }
};

struct ExperimentResult {
  bool aborted = false;           // registration check failed
  std::string abort_reason;
  size_t registered_clients = 0;
  std::vector<StageResult> stages;

  const StageResult* Stage(StageKind kind) const;
  uint64_t TotalRequests() const;
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_TYPES_H_
