#include "src/core/survey.h"

#include "src/core/parallel_runner.h"

namespace mfc {

void AccumulateBreakdown(SurveyBreakdown& breakdown, const ExperimentResult& result) {
  const StageResult* stage_result = result.stages.empty() ? nullptr : &result.stages[0];
  if (result.aborted || stage_result == nullptr) {
    return;
  }
  ++breakdown.servers;
  if (!stage_result->stopped) {
    ++breakdown.nostop;
  } else if (stage_result->stopping_crowd_size <= 10) {
    ++breakdown.b10;
  } else if (stage_result->stopping_crowd_size <= 20) {
    ++breakdown.b20;
  } else if (stage_result->stopping_crowd_size <= 30) {
    ++breakdown.b30;
  } else if (stage_result->stopping_crowd_size <= 40) {
    ++breakdown.b40;
  } else if (stage_result->stopping_crowd_size <= 50) {
    ++breakdown.b50;
  } else {
    ++breakdown.b50plus;
  }
}

SurveyBreakdown RunSurveyCohortParallel(Cohort cohort, StageKind stage, size_t servers,
                                        size_t max_crowd, uint64_t seed, size_t jobs,
                                        std::vector<ExperimentResult>* per_site) {
  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 5;
  config.max_crowd = max_crowd;
  config.min_clients = 50;

  // Sample every site up front from the shared stream, in index order — the
  // same draws the sequential loop made — so parallel scheduling cannot
  // perturb which sites the survey visits.
  Rng rng(seed);
  std::vector<SiteInstance> instances;
  instances.reserve(servers);
  for (size_t i = 0; i < servers; ++i) {
    instances.push_back(SampleSite(rng, cohort));
  }

  ParallelRunner runner(jobs);
  std::vector<ExperimentResult> results = runner.Map<ExperimentResult>(
      servers, [&](size_t i) {
        return RunSiteExperiment(instances[i], config, {stage}, seed * 1000 + i);
      });

  SurveyBreakdown breakdown;
  breakdown.cohort = cohort;
  for (const ExperimentResult& result : results) {
    AccumulateBreakdown(breakdown, result);
  }
  if (per_site != nullptr) {
    *per_site = std::move(results);
  }
  return breakdown;
}

}  // namespace mfc
