#include "src/core/survey.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/journal/journal.h"
#include "src/core/journal/shutdown.h"
#include "src/core/parallel_runner.h"
#include "src/telemetry/stats_stream.h"

namespace mfc {

void AccumulateBreakdown(SurveyBreakdown& breakdown, const ExperimentResult& result) {
  const StageResult* stage_result = result.stages.empty() ? nullptr : &result.stages[0];
  if (result.aborted || stage_result == nullptr) {
    return;
  }
  ++breakdown.servers;
  if (!stage_result->stopped) {
    ++breakdown.nostop;
  } else if (stage_result->stopping_crowd_size <= 10) {
    ++breakdown.b10;
  } else if (stage_result->stopping_crowd_size <= 20) {
    ++breakdown.b20;
  } else if (stage_result->stopping_crowd_size <= 30) {
    ++breakdown.b30;
  } else if (stage_result->stopping_crowd_size <= 40) {
    ++breakdown.b40;
  } else if (stage_result->stopping_crowd_size <= 50) {
    ++breakdown.b50;
  } else {
    ++breakdown.b50plus;
  }
}

SurveyBreakdown RunSurveyCohortParallel(Cohort cohort, StageKind stage, size_t servers,
                                        size_t max_crowd, uint64_t seed, size_t jobs,
                                        std::vector<ExperimentResult>* per_site,
                                        SurveyTelemetry* telemetry, SurveyJournal* journal,
                                        const SurveyRunOptions& run) {
  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 5;
  config.max_crowd = max_crowd;
  config.min_clients = 50;

  // Sites stream on demand: instance i is regenerated from its own
  // SplitMix64-derived seed whenever a worker needs it, so even a 1M-site
  // survey holds no instances vector (legacy mode materializes, see
  // SiteStream). This process covers the interleaved shard
  // { run.shard_index, run.shard_index + shards, ... } of the global index
  // space; everything observable (seeds, journal records, pids, per_site
  // slots) is keyed by GLOBAL index so shard outputs merge byte-identically.
  const size_t shard_count = run.shards == 0 ? 1 : run.shards;
  const size_t shard_index = run.shard_index % shard_count;
  SiteStream sites(cohort, seed, servers, run.legacy_seeds);
  const size_t local_count =
      servers > shard_index ? (servers - shard_index - 1) / shard_count + 1 : 0;
  auto global_of = [shard_index, shard_count](size_t local) {
    return shard_index + local * shard_count;
  };

  // Per-site observability shards: each task fills only its local slot, and
  // the slots are folded in (global) index order below — merged telemetry is
  // therefore byte-identical for any jobs count (the same invariant the
  // results vector itself relies on).
  const bool observe = telemetry != nullptr && telemetry->Enabled();
  struct SiteTelemetry {
    Tracer tracer;
    MetricsRegistry metrics;
  };
  std::vector<std::unique_ptr<SiteTelemetry>> shards;
  if (observe) {
    shards.resize(local_count);
  }
  std::atomic<size_t> completed{0};
  std::atomic<size_t> processed{0};
  const uint64_t pid_base = telemetry != nullptr ? telemetry->next_pid : 0;

  // Fault-injection hook for the supervisor's chaos gate (DESIGN.md §14):
  // when MFC_CRASH_SITE names a global site index, *executing* that site
  // aborts the process. Replayed and quarantined sites never trip it, so a
  // quarantine decision demonstrably un-wedges the shard.
  long long crash_site = -1;
  if (const char* env = getenv("MFC_CRASH_SITE")) {
    crash_site = strtoll(env, nullptr, 10);
  }

  auto run_site = [&](size_t local) {
    const size_t i = global_of(local);
    // A quarantined site (poisoned: it crashed this shard's worker
    // repeatedly) is skipped entirely: its slot keeps a default
    // ExperimentResult, which AccumulateBreakdown ignores, and no site
    // record is ever appended for it.
    if (journal != nullptr && journal->Quarantined(i) != nullptr) {
      processed.fetch_add(1, std::memory_order_relaxed);
      if (telemetry != nullptr && telemetry->progress) {
        size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
        fprintf(stderr, "[survey] site %zu/%zu (index %zu): quarantined, skipped\n", done,
                local_count, i);
      }
      return ExperimentResult{};
    }
    // Replay from the journal when this site already completed in an
    // earlier (interrupted) run: restore the result and the telemetry shard
    // exactly as the live path would have produced them.
    const JournalSiteRecord* replay =
        journal != nullptr ? journal->Replayed(i) : nullptr;
    if (replay != nullptr) {
      if (observe) {
        shards[local] = std::make_unique<SiteTelemetry>();
        for (const TraceSpan& span : replay->trace_spans) {
          shards[local]->tracer.RestoreSpan(span);
        }
        shards[local]->metrics = replay->metrics;
      }
      journal->resumed_sites.fetch_add(1, std::memory_order_relaxed);
      processed.fetch_add(1, std::memory_order_relaxed);
      if (telemetry != nullptr && telemetry->progress) {
        size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
        fprintf(stderr, "[survey] site %zu/%zu (index %zu): replayed from journal\n", done,
                local_count, i);
      }
      return replay->result;
    }

    Telemetry site_telemetry;
    if (observe) {
      shards[local] = std::make_unique<SiteTelemetry>();
      if (telemetry->collect_trace) {
        site_telemetry.tracer = &shards[local]->tracer;
      }
      if (telemetry->collect_metrics) {
        site_telemetry.metrics = &shards[local]->metrics;
      }
    }
    if (crash_site >= 0 && i == static_cast<size_t>(crash_site)) {
      fprintf(stderr, "[survey] MFC_CRASH_SITE: crashing on site index %zu\n", i);
      abort();
    }
    ExperimentResult result =
        RunSiteExperiment(sites.Site(i), config, {stage}, sites.ExperimentSeed(i),
                          observe ? &site_telemetry : nullptr);
    if (journal != nullptr) {
      JournalSiteRecord record;
      record.cohort_ordinal = journal->CurrentOrdinal();
      record.site_index = i;
      record.seed = sites.ExperimentSeed(i);
      record.stage = stage;
      record.pid = pid_base + i;
      record.result = result;
      if (observe && telemetry->collect_trace) {
        record.has_trace = true;
        record.trace_spans = shards[local]->tracer.Spans();
      }
      if (observe && telemetry->collect_metrics) {
        record.has_metrics = true;
        record.metrics = shards[local]->metrics;
      }
      journal->AppendSite(record);
    }
    processed.fetch_add(1, std::memory_order_relaxed);
    if (telemetry != nullptr && telemetry->progress) {
      size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      const StageResult* sr = result.stages.empty() ? nullptr : &result.stages[0];
      fprintf(stderr, "[survey] site %zu/%zu (index %zu): %s\n", done, local_count, i,
              result.aborted ? "aborted"
              : sr == nullptr ? "no stage"
              : sr->stopped
                  ? ("stopped at " + std::to_string(sr->stopping_crowd_size)).c_str()
                  : "NoStop");
    }
    return result;
  };

  ParallelRunner runner(jobs);

  // Health-plane sampler (DESIGN.md §11): reads only the atomics the run
  // already maintains, so attaching it cannot change results or scheduling.
  std::unique_ptr<ParallelProgress> worker_progress;
  std::unique_ptr<SurveyStatsSampler> sampler;
  if (telemetry != nullptr && telemetry->HealthAttached()) {
    worker_progress = std::make_unique<ParallelProgress>(runner.Jobs());
    SurveySamplerSource source;
    source.label = telemetry->stats_label;
    source.processed = &processed;
    source.total = local_count;
    if (journal != nullptr) {
      source.journal_executed = &journal->executed_sites;
      source.journal_resumed = &journal->resumed_sites;
    }
    source.workers = worker_progress.get();
    sampler = std::make_unique<SurveyStatsSampler>(telemetry->stats, telemetry->progress_line,
                                                   telemetry->stats_interval, source);
    sampler->Start();
  }

  std::vector<ExperimentResult> results(local_count);
  if (journal != nullptr) {
    // Journaled runs are cancelable: a shutdown signal drains in-flight
    // sites (which still reach the journal) and skips the rest.
    runner.RunIndexed(
        local_count, [&](size_t local) { results[local] = run_site(local); },
        [] { return ShutdownRequested(); }, worker_progress.get());
    if (processed.load(std::memory_order_relaxed) < local_count) {
      journal->interrupted.store(true, std::memory_order_relaxed);
    }
  } else {
    runner.RunIndexed(
        local_count, [&](size_t local) { results[local] = run_site(local); },
        worker_progress.get());
  }
  if (sampler != nullptr) {
    sampler->Stop();  // emits the final done/total snapshot
  }

  if (observe) {
    for (size_t local = 0; local < shards.size(); ++local) {
      if (shards[local] == nullptr) {
        continue;  // skipped under graceful shutdown
      }
      telemetry->metrics.Merge(shards[local]->metrics);
      telemetry->trace.MergeFrom(shards[local]->tracer, telemetry->next_pid + global_of(local));
    }
    // Advance by the GLOBAL site count: successive cohorts get the same pid
    // layout in every shard, matching the single-process run they merge to.
    telemetry->next_pid += servers;
  }

  SurveyBreakdown breakdown;
  breakdown.cohort = cohort;
  for (const ExperimentResult& result : results) {
    AccumulateBreakdown(breakdown, result);
  }
  if (per_site != nullptr) {
    per_site->clear();
    per_site->resize(servers);
    for (size_t local = 0; local < results.size(); ++local) {
      (*per_site)[global_of(local)] = std::move(results[local]);
    }
  }
  return breakdown;
}

}  // namespace mfc
