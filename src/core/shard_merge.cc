#include "src/core/shard_merge.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/core/journal/json.h"

namespace mfc {
namespace {

std::string Describe(const JournalCohortRecord& c) {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "cohort=%d stage=%d servers=%zu max_crowd=%zu seed=%llu pid_base=%llu "
           "shards=%zu legacy_seeds=%d",
           static_cast<int>(c.cohort), static_cast<int>(c.stage), c.servers, c.max_crowd,
           static_cast<unsigned long long>(c.seed), static_cast<unsigned long long>(c.pid_base),
           c.shards, c.legacy_seeds ? 1 : 0);
  return buf;
}

// Everything but shard_index must agree across one cohort's shard records.
bool SameCohortModuloShard(const JournalCohortRecord& a, const JournalCohortRecord& b) {
  return a.ordinal == b.ordinal && a.cohort == b.cohort && a.stage == b.stage &&
         a.servers == b.servers && a.max_crowd == b.max_crowd && a.seed == b.seed &&
         a.pid_base == b.pid_base && a.shards == b.shards && a.legacy_seeds == b.legacy_seeds;
}

size_t CountSitesForOrdinal(const JournalFileData& data, size_t ordinal) {
  size_t count = 0;
  for (const auto& entry : data.sites) {
    if (entry.first.first == ordinal) {
      ++count;
    }
  }
  return count;
}

}  // namespace

bool MergeShardJournals(const std::vector<std::string>& paths, ShardMergeResult* out,
                        std::string* error) {
  if (paths.empty()) {
    *error = "no shard journals to merge";
    return false;
  }
  std::vector<JournalFileData> files(paths.size());
  for (size_t f = 0; f < paths.size(); ++f) {
    if (!ReadJournalFile(paths[f], &files[f], error)) {
      *error = paths[f] + ": " + *error;
      return false;
    }
    if (!files[f].warning.empty()) {
      fprintf(stderr, "warning: %s: %s\n", paths[f].c_str(), files[f].warning.c_str());
    }
  }
  for (size_t f = 1; f < files.size(); ++f) {
    if (files[f].tool != files[0].tool || files[f].fingerprint != files[0].fingerprint) {
      *error = paths[f] + ": belongs to a different run than " + paths[0] + " (tool \"" +
               files[f].tool + "\" fingerprint \"" + files[f].fingerprint + "\" vs tool \"" +
               files[0].tool + "\" fingerprint \"" + files[0].fingerprint + "\")";
      return false;
    }
  }

  // Index every shard's cohort records by ordinal and cross-check them. A
  // shard with fewer cohort records than its peers is not corrupt — its
  // worker died early. Classify precisely instead of rejecting ambiguously:
  // a journal holding only a header, or a BeginCohort with no site record
  // yet, is "resumable, zero progress".
  size_t ordinals = 0;
  for (const JournalFileData& file : files) {
    ordinals = std::max(ordinals, file.cohorts.size());
  }
  for (size_t f = 0; f < files.size(); ++f) {
    if (files[f].cohorts.size() == ordinals) {
      continue;
    }
    char buf[320];
    if (files[f].cohorts.empty()) {
      snprintf(buf, sizeof(buf),
               "%s: resumable, zero progress — a valid header but no cohort records yet (its "
               "worker died during startup); re-run that shard with --resume before merging",
               paths[f].c_str());
    } else {
      const JournalCohortRecord& last = files[f].cohorts.back();
      if (CountSitesForOrdinal(files[f], last.ordinal) == 0) {
        snprintf(buf, sizeof(buf),
                 "%s: shard %zu is resumable, zero progress on cohort %zu — its worker died "
                 "between BeginCohort and the first site record; re-run that shard with "
                 "--resume before merging",
                 paths[f].c_str(), last.shard_index, last.ordinal);
      } else {
        snprintf(buf, sizeof(buf),
                 "%s: shard %zu has %zu cohort record(s) but its peers have %zu; re-run that "
                 "shard with --resume before merging",
                 paths[f].c_str(), last.shard_index, files[f].cohorts.size(), ordinals);
      }
    }
    *error = buf;
    return false;
  }
  if (ordinals == 0) {
    *error = paths[0] + ": no cohort records (nothing to merge)";
    return false;
  }

  // Quarantine records are keyed by (ordinal, global index); the scan layer
  // already validated shard membership and site/quarantine exclusivity.
  std::map<std::pair<size_t, size_t>, const JournalQuarantineRecord*> quarantined;
  for (const JournalFileData& file : files) {
    for (const JournalQuarantineRecord& q : file.quarantines) {
      quarantined[{q.cohort_ordinal, q.site_index}] = &q;
    }
  }

  out->tool = files[0].tool;
  out->fingerprint = files[0].fingerprint;
  out->cohorts.clear();
  out->breakdowns.clear();
  out->per_site.clear();
  out->quarantined.clear();
  out->has_trace = false;
  out->has_metrics = false;

  for (size_t ord = 0; ord < ordinals; ++ord) {
    const JournalCohortRecord& ref = files[0].cohorts[ord];
    const size_t shard_count = ref.shards == 0 ? 1 : ref.shards;
    if (paths.size() != shard_count) {
      char buf[160];
      snprintf(buf, sizeof(buf),
               "cohort %zu was run with %zu shard(s) but %zu journal(s) were given", ord,
               shard_count, paths.size());
      *error = buf;
      return false;
    }
    // shard_index values must be a permutation of 0..k-1; owner[j] maps
    // shard index j to the journal file holding it.
    std::vector<size_t> owner(shard_count, paths.size());
    for (size_t f = 0; f < files.size(); ++f) {
      const JournalCohortRecord& c = files[f].cohorts[ord];
      if (!SameCohortModuloShard(ref, c)) {
        *error = paths[f] + ": cohort " + std::to_string(ord) + " mismatch (" + Describe(c) +
                 " vs " + Describe(ref) + " in " + paths[0] + ")";
        return false;
      }
      if (c.shard_index >= shard_count) {
        *error = paths[f] + ": cohort " + std::to_string(ord) + " claims shard_index " +
                 std::to_string(c.shard_index) + " of " + std::to_string(shard_count);
        return false;
      }
      if (owner[c.shard_index] != paths.size()) {
        *error = paths[f] + " and " + paths[owner[c.shard_index]] +
                 " both claim shard " + std::to_string(c.shard_index) + " of cohort " +
                 std::to_string(ord);
        return false;
      }
      owner[c.shard_index] = f;
    }

    // Completeness: every global site must exist in its owning shard. A gap
    // means that shard was interrupted — merging a partial survey would
    // silently understate the breakdown, so this is a hard error. The one
    // legal gap is a quarantined site: its slot stays default-constructed
    // (invisible to the breakdown, matching what the surviving worker
    // computed) and the record is surfaced in the merged report instead.
    SurveyBreakdown breakdown;
    breakdown.cohort = ref.cohort;
    std::vector<ExperimentResult> sites(ref.servers);
    std::vector<JournalQuarantineRecord> cohort_quarantined;
    for (size_t i = 0; i < ref.servers; ++i) {
      const size_t f = owner[i % shard_count];
      auto it = files[f].sites.find({ord, i});
      if (it == files[f].sites.end()) {
        auto q = quarantined.find({ord, i});
        if (q != quarantined.end()) {
          cohort_quarantined.push_back(*q->second);
          continue;
        }
        if (CountSitesForOrdinal(files[f], ord) == 0) {
          *error = paths[f] + ": shard " + std::to_string(i % shard_count) +
                   " is resumable, zero progress on cohort " + std::to_string(ord) +
                   " — its worker died between BeginCohort and the first site record; re-run "
                   "that shard with --resume before merging";
        } else {
          *error = paths[f] + ": shard " + std::to_string(i % shard_count) + " is missing site " +
                   std::to_string(i) + " of cohort " + std::to_string(ord) +
                   " — that shard looks interrupted; finish it with --resume before merging";
        }
        return false;
      }
      const JournalSiteRecord& record = it->second;
      AccumulateBreakdown(breakdown, record.result);
      if (record.has_metrics) {
        out->has_metrics = true;
        out->metrics.Merge(record.metrics);
      }
      if (record.has_trace) {
        out->has_trace = true;
        Tracer site;
        for (const TraceSpan& span : record.trace_spans) {
          site.RestoreSpan(span);
        }
        out->trace.MergeFrom(site, record.pid);
      }
      sites[i] = record.result;
    }

    JournalCohortRecord merged = ref;
    merged.shards = 1;
    merged.shard_index = 0;
    out->cohorts.push_back(merged);
    out->breakdowns.push_back(breakdown);
    out->per_site.push_back(std::move(sites));
    out->quarantined.push_back(std::move(cohort_quarantined));
  }
  return true;
}

std::string BuildSurveyReportJson(const SurveyReportInput& input) {
  std::string json;
  char line[256];
  snprintf(line, sizeof(line),
           "{\n  \"survey\": {\"cohort\": \"%s\", \"stage\": %d, \"servers\": %zu, "
           "\"max_crowd\": %zu, \"seed\": %llu, \"legacy_seeds\": %s},\n",
           input.cohort_name.c_str(), input.stage, input.servers, input.max_crowd,
           static_cast<unsigned long long>(input.seed), input.legacy_seeds ? "true" : "false");
  json += line;
  const SurveyBreakdown& b = input.breakdown;
  snprintf(line, sizeof(line),
           "  \"breakdown\": {\"servers\": %zu, \"le10\": %zu, \"b20\": %zu, \"b30\": %zu, "
           "\"b40\": %zu, \"b50\": %zu, \"gt50\": %zu, \"nostop\": %zu},\n",
           b.servers, b.b10, b.b20, b.b30, b.b40, b.b50, b.b50plus, b.nostop);
  json += line;
  if (input.quarantined != nullptr && !input.quarantined->empty()) {
    json += "  \"quarantined_sites\": [\n";
    for (size_t i = 0; i < input.quarantined->size(); ++i) {
      const JournalQuarantineRecord& q = (*input.quarantined)[i];
      snprintf(line, sizeof(line), "    {\"index\": %zu, \"crashes\": %zu, \"signature\": ",
               q.site_index, q.crashes);
      json += line;
      JsonAppendQuoted(json, q.signature);
      json += i + 1 < input.quarantined->size() ? "},\n" : "}\n";
    }
    json += "  ],\n";
  }
  json += "  \"sites\": [\n";
  const size_t n = input.per_site != nullptr ? input.per_site->size() : 0;
  for (size_t i = 0; i < n; ++i) {
    const ExperimentResult& result = (*input.per_site)[i];
    const StageResult* sr = result.stages.empty() ? nullptr : &result.stages[0];
    const bool stopped = sr != nullptr && sr->stopped;
    snprintf(line, sizeof(line),
             "    {\"index\": %zu, \"aborted\": %s, \"stopped\": %s, \"stop_at\": %zu}%s\n", i,
             result.aborted ? "true" : "false", stopped ? "true" : "false",
             stopped ? sr->stopping_crowd_size : 0, i + 1 < n ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace mfc
