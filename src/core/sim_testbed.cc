#include "src/core/sim_testbed.h"

#include <cassert>
#include <memory>
#include <utility>

#include "src/http/parser.h"

namespace mfc {

SimTestbed::SimTestbed(uint64_t seed, TestbedConfig config, std::vector<ClientNetProfile> fleet,
                       HttpTarget& target)
    : rng_(seed), config_(std::move(config)), fleet_size_(fleet.size()), target_(target) {
  // The coordinator participates in the network as one extra host (for its
  // crawl fetches); it is not part of the probe fleet.
  coordinator_index_ = fleet.size();
  fleet.push_back(config_.coordinator_net);
  wan_ = std::make_unique<WideAreaNetwork>(loop_, rng_, config_.wan, std::move(fleet));
}

std::vector<size_t> SimTestbed::ProbeClients(SimDuration timeout) {
  std::vector<size_t> responsive;
  double loss = config_.wan.control_loss_rate;
  for (size_t i = 0; i < fleet_size_; ++i) {
    // Probe and reply each cross the control channel once.
    if (loss > 0.0 && (rng_.Chance(loss) || rng_.Chance(loss))) {
      continue;
    }
    SimDuration rtt = wan_->SampleCoordOneWay(i) + wan_->SampleCoordOneWay(i);
    if (rtt <= timeout) {
      responsive.push_back(i);
    }
  }
  return responsive;
}

SimDuration SimTestbed::MeasureCoordRtt(size_t client) {
  return wan_->SampleCoordOneWay(client) + wan_->SampleCoordOneWay(client);
}

SimDuration SimTestbed::MeasureTargetRtt(size_t client) {
  return wan_->SampleTargetOneWay(client) + wan_->SampleTargetOneWay(client);
}

void SimTestbed::Launch(size_t client, const HttpRequest& request,
                        std::function<void(const RequestSample&)> on_done) {
  auto sink = std::make_shared<std::function<void(const RequestSample&)>>(std::move(on_done));
  auto state = std::make_shared<PendingRequest>();
  state->client = client;
  state->start = loop_.Now();

  // Client-side kill timer (Figure 2b step 2: "If full response not received
  // by 10s: kill the request, set code=ERR, response time=10s").
  state->kill_timer = loop_.ScheduleAfter(request_timeout_, [this, state, sink] {
    state->kill_timer = 0;
    if (state->settled) {
      return;
    }
    state->settled = true;
    if (state->flow != 0) {
      wan_->AbortDownload(state->flow);
      state->flow = 0;
    }
    if (state->on_sent) {
      // The server discovers the dead connection at write time and releases
      // its worker.
      auto release = std::move(state->on_sent);
      release();
    }
    RequestSample sample;
    sample.client_id = state->client;
    sample.code = HttpStatus::kClientTimeout;
    sample.bytes = 0.0;
    sample.response_time = request_timeout_;
    sample.timed_out = true;
    (*sink)(sample);
  });

  // TCP handshake + request delivery: SYN, SYN-ACK, then ACK piggybacking the
  // request — three one-way trips, so the first HTTP byte lands ~1.5 RTTs
  // after the client fires (Section 2.2.4).
  SimDuration to_server = wan_->SampleTargetOneWay(client) + wan_->SampleTargetOneWay(client) +
                          wan_->SampleTargetOneWay(client);
  loop_.ScheduleAfter(to_server, [this, state, request, sink] {
    if (state->settled) {
      return;  // killed before the request even reached the target
    }
    target_.OnRequest(request, /*is_mfc=*/true,
                      [this, state, sink](HttpStatus status, double bytes,
                                          std::function<void()> on_sent) {
                        state->transport_called = true;
                        if (state->settled) {
                          if (on_sent) {
                            on_sent();  // immediate reset: client is gone
                          }
                          return;
                        }
                        state->status = status;
                        state->bytes = bytes;
                        state->on_sent = std::move(on_sent);
                        state->flow = wan_->StartDownload(
                            state->client, bytes, [this, state, sink] {
                              state->flow = 0;
                              if (state->settled) {
                                return;
                              }
                              state->settled = true;
                              if (state->kill_timer != 0) {
                                loop_.Cancel(state->kill_timer);
                                state->kill_timer = 0;
                              }
                              RequestSample sample;
                              sample.client_id = state->client;
                              sample.code = state->status;
                              sample.bytes = state->bytes;
                              sample.response_time = loop_.Now() - state->start;
                              (*sink)(sample);
                              if (state->on_sent) {
                                auto release = std::move(state->on_sent);
                                release();
                              }
                            });
                      });
  });
}

RequestSample SimTestbed::FetchOnce(size_t client, const HttpRequest& request) {
  auto result = std::make_shared<std::vector<RequestSample>>();
  Launch(client, request, [result](const RequestSample& s) { result->push_back(s); });
  // Drive the simulation until this one request settles. The kill timer
  // guarantees settlement within request_timeout_.
  while (result->empty() && loop_.RunOne()) {
  }
  assert(!result->empty() && "request neither completed nor timed out");
  return result->front();
}

std::vector<RequestSample> SimTestbed::ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                                    SimTime poll_time) {
  // Shared sink; owned beyond this call because aborted/straggler requests
  // may still settle after the poll (their samples are simply not returned,
  // as with the paper's poll-based collection).
  auto sink = std::make_shared<std::vector<RequestSample>>();
  for (const CrowdRequestPlan& plan : plans) {
    SimTime send = std::max(plan.command_send_time, loop_.Now());
    loop_.ScheduleAt(send, [this, plan, sink] {
      // Command travels coordinator -> client over lossy UDP.
      wan_->SendControl(plan.client_id, [this, plan, sink] {
        for (size_t c = 0; c < plan.connections; ++c) {
          Launch(plan.client_id, plan.request,
                 [sink](const RequestSample& s) { sink->push_back(s); });
        }
      });
    });
  }
  loop_.RunUntil(poll_time);
  return *sink;
}

HttpResponse SimTestbed::Fetch(const HttpRequest& request) {
  auto result = std::make_shared<std::vector<RequestSample>>();
  Launch(coordinator_index_, request,
         [result](const RequestSample& s) { result->push_back(s); });
  while (result->empty() && loop_.RunOne()) {
  }
  assert(!result->empty());
  const RequestSample& sample = result->front();

  HttpResponse response;
  if (sample.timed_out) {
    response.status = HttpStatus::kRequestTimeout;
    return response;
  }
  response.status = sample.code;

  const ContentStore* content = target_.Content();
  const WebObject* object =
      content != nullptr ? content->Find(request.Path()) : nullptr;
  if (object != nullptr && IsSuccess(sample.code)) {
    if (request.method == HttpMethod::kGet && !object->body.empty()) {
      // Real page bytes: round-trip them through the wire format so the
      // genuine serializer/parser pair is on the crawl path.
      HttpResponse built = HttpResponse::Make(sample.code, MimeTypeForPath(object->path),
                                              object->body);
      std::string wire = built.Serialize();
      ResponseParser parser;
      parser.Feed(wire);
      assert(parser.Done());
      return parser.Message();
    }
    // Bulk or dynamic data: metadata only, like a HEAD (or a body the crawler
    // does not need to inspect).
    response.headers.Set("Content-Type", object->dynamic
                                             ? "text/html"
                                             : std::string(MimeTypeForPath(object->path)));
    response.headers.Set("Content-Length", std::to_string(object->size_bytes));
    return response;
  }
  response.headers.Set("Content-Length", "0");
  return response;
}

}  // namespace mfc
