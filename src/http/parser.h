// Incremental HTTP/1.1 parsers.
//
// Feed() accepts arbitrary byte chunks (the way a socket delivers them) and
// returns how many bytes were consumed. When Done() the parsed message is
// available; on protocol violations the parser enters the Error state and
// stays there. Bodies are delimited by Content-Length only (the subset our
// servers emit); responses to HEAD must be configured via
// set_expect_body(false) since their Content-Length does not imply a body.
#ifndef MFC_SRC_HTTP_PARSER_H_
#define MFC_SRC_HTTP_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/http/message.h"

namespace mfc {

enum class ParsePhase { kStartLine, kHeaders, kBody, kDone, kError };

namespace http_internal {

// Shared header/body machinery for the two parsers.
class MessageParserBase {
 public:
  ParsePhase Phase() const { return phase_; }
  bool Done() const { return phase_ == ParsePhase::kDone; }
  bool Failed() const { return phase_ == ParsePhase::kError; }
  const std::string& ErrorText() const { return error_; }

 protected:
  // Consumes from |data|; returns bytes consumed.
  size_t FeedInternal(std::string_view data);

  virtual bool ParseStartLine(std::string_view line) = 0;
  virtual HeaderMap& Headers() = 0;
  virtual std::string& Body() = 0;

  void Fail(std::string msg);
  // Called when the blank line after headers is seen; decides body length.
  void OnHeadersComplete();

  ParsePhase phase_ = ParsePhase::kStartLine;
  bool expect_body_ = true;
  uint64_t body_remaining_ = 0;
  std::string buffer_;  // partial line accumulator
  std::string error_;

 public:
  virtual ~MessageParserBase() = default;
  // For responses to HEAD requests: headers may carry Content-Length but no
  // body follows.
  void set_expect_body(bool expect) { expect_body_ = expect; }
};

}  // namespace http_internal

class RequestParser : public http_internal::MessageParserBase {
 public:
  size_t Feed(std::string_view data) { return FeedInternal(data); }
  const HttpRequest& Message() const { return request_; }

 private:
  bool ParseStartLine(std::string_view line) override;
  HeaderMap& Headers() override { return request_.headers; }
  std::string& Body() override { return request_.body; }

  HttpRequest request_;
};

class ResponseParser : public http_internal::MessageParserBase {
 public:
  size_t Feed(std::string_view data) { return FeedInternal(data); }
  const HttpResponse& Message() const { return response_; }

 private:
  bool ParseStartLine(std::string_view line) override;
  HeaderMap& Headers() override { return response_.headers; }
  std::string& Body() override { return response_.body; }

  HttpResponse response_;
};

}  // namespace mfc

#endif  // MFC_SRC_HTTP_PARSER_H_
