#include "src/http/html.h"

#include <cctype>

namespace mfc {
namespace {

char ToLowerAscii(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }

// Case-insensitive match of |word| at position |pos|.
bool MatchesAt(std::string_view text, size_t pos, std::string_view word) {
  if (pos + word.size() > text.size()) {
    return false;
  }
  for (size_t i = 0; i < word.size(); ++i) {
    if (ToLowerAscii(text[pos + i]) != word[i]) {
      return false;
    }
  }
  return true;
}

// Finds attribute |attr| inside the tag body [pos, end) and returns its value.
std::string_view FindAttr(std::string_view tag, std::string_view attr) {
  for (size_t i = 0; i + attr.size() < tag.size(); ++i) {
    if (!MatchesAt(tag, i, attr)) {
      continue;
    }
    // Must be a word boundary before the attribute name.
    if (i > 0 && (std::isalnum(static_cast<unsigned char>(tag[i - 1])) || tag[i - 1] == '-')) {
      continue;
    }
    size_t j = i + attr.size();
    while (j < tag.size() && std::isspace(static_cast<unsigned char>(tag[j]))) {
      ++j;
    }
    if (j >= tag.size() || tag[j] != '=') {
      continue;
    }
    ++j;
    while (j < tag.size() && std::isspace(static_cast<unsigned char>(tag[j]))) {
      ++j;
    }
    if (j >= tag.size()) {
      return {};
    }
    if (tag[j] == '"' || tag[j] == '\'') {
      char quote = tag[j];
      size_t close = tag.find(quote, j + 1);
      if (close == std::string_view::npos) {
        return {};
      }
      return tag.substr(j + 1, close - j - 1);
    }
    size_t end = j;
    while (end < tag.size() && !std::isspace(static_cast<unsigned char>(tag[end])) &&
           tag[end] != '>') {
      ++end;
    }
    return tag.substr(j, end - j);
  }
  return {};
}

}  // namespace

std::vector<std::string> ExtractLinks(std::string_view html) {
  std::vector<std::string> links;
  size_t pos = 0;
  while (pos < html.size()) {
    size_t open = html.find('<', pos);
    if (open == std::string_view::npos) {
      break;
    }
    size_t close = html.find('>', open);
    if (close == std::string_view::npos) {
      break;
    }
    std::string_view tag = html.substr(open + 1, close - open - 1);
    pos = close + 1;
    if (tag.empty() || tag.front() == '/' || tag.front() == '!') {
      continue;
    }
    // Tag name.
    size_t name_end = 0;
    while (name_end < tag.size() && !std::isspace(static_cast<unsigned char>(tag[name_end]))) {
      ++name_end;
    }
    std::string name;
    for (size_t i = 0; i < name_end; ++i) {
      name.push_back(ToLowerAscii(tag[i]));
    }
    std::string_view value;
    if (name == "a" || name == "link") {
      value = FindAttr(tag, "href");
    } else if (name == "img" || name == "script" || name == "iframe") {
      value = FindAttr(tag, "src");
    }
    if (!value.empty()) {
      links.emplace_back(value);
    }
  }
  return links;
}

}  // namespace mfc
