// Tiny HTML scanner for the profiling crawler: extracts link targets from
// <a href>, <img src>, <script src> and <link href> attributes. Not a real
// HTML parser — exactly the heuristic level the paper's crawler needs.
#ifndef MFC_SRC_HTTP_HTML_H_
#define MFC_SRC_HTTP_HTML_H_

#include <string>
#include <string_view>
#include <vector>

namespace mfc {

// Returns raw attribute values, in document order, duplicates preserved.
std::vector<std::string> ExtractLinks(std::string_view html);

}  // namespace mfc

#endif  // MFC_SRC_HTTP_HTML_H_
