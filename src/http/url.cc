#include "src/http/url.h"

#include <charconv>
#include <vector>

namespace mfc {
namespace {

// Splits "path?query" into the two halves and assigns them to |url|.
void AssignTarget(Url& url, std::string_view target) {
  auto q = target.find('?');
  if (q == std::string_view::npos) {
    url.path = std::string(target);
    url.query.clear();
  } else {
    url.path = std::string(target.substr(0, q));
    url.query = std::string(target.substr(q + 1));
  }
  if (url.path.empty()) {
    url.path = "/";
  }
}

// Directory part of a path, always ending in '/'. "/a/b.html" -> "/a/".
std::string_view DirOf(std::string_view path) {
  auto slash = path.rfind('/');
  if (slash == std::string_view::npos) {
    return "/";
  }
  return path.substr(0, slash + 1);
}

// Removes "./" and "a/../" segments so crawler-visited paths are canonical.
std::string NormalizePath(std::string_view path) {
  std::vector<std::string_view> segs;
  size_t pos = 0;
  while (pos < path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string_view::npos) {
      next = path.size();
    }
    std::string_view seg = path.substr(pos, next - pos);
    if (seg == "..") {
      if (!segs.empty()) {
        segs.pop_back();
      }
    } else if (!seg.empty() && seg != ".") {
      segs.push_back(seg);
    }
    pos = next + 1;
  }
  std::string out = "/";
  for (size_t i = 0; i < segs.size(); ++i) {
    out.append(segs[i]);
    if (i + 1 < segs.size()) {
      out.push_back('/');
    }
  }
  // Preserve a trailing slash ("directory" URLs) except for the root which
  // already has it.
  if (path.size() > 1 && path.back() == '/' && out.size() > 1) {
    out.push_back('/');
  }
  return out;
}

}  // namespace

std::string Url::RequestTarget() const {
  if (query.empty()) {
    return path;
  }
  return path + "?" + query;
}

std::string Url::ToString() const {
  std::string out = scheme + "://" + host;
  if (port != 80) {
    out += ":" + std::to_string(port);
  }
  out += RequestTarget();
  return out;
}

std::optional<Url> ParseUrl(std::string_view text, const Url* base) {
  // Strip fragment.
  auto hash = text.find('#');
  if (hash != std::string_view::npos) {
    text = text.substr(0, hash);
  }
  if (text.empty()) {
    return std::nullopt;
  }

  auto scheme_end = text.find("://");
  if (scheme_end != std::string_view::npos) {
    std::string_view scheme = text.substr(0, scheme_end);
    if (scheme != "http") {
      return std::nullopt;  // https/ftp/mailto etc. are out of scope
    }
    std::string_view rest = text.substr(scheme_end + 3);
    auto path_start = rest.find('/');
    std::string_view authority = path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
    std::string_view target = path_start == std::string_view::npos ? "/" : rest.substr(path_start);
    if (authority.empty()) {
      return std::nullopt;
    }
    Url url;
    auto colon = authority.find(':');
    if (colon == std::string_view::npos) {
      url.host = std::string(authority);
    } else {
      url.host = std::string(authority.substr(0, colon));
      std::string_view port_sv = authority.substr(colon + 1);
      uint32_t port = 0;
      auto [ptr, ec] = std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(), port);
      if (ec != std::errc() || ptr != port_sv.data() + port_sv.size() || port == 0 || port > 65535) {
        return std::nullopt;
      }
      url.port = static_cast<uint16_t>(port);
    }
    if (url.host.empty()) {
      return std::nullopt;
    }
    AssignTarget(url, target);
    url.path = NormalizePath(url.path);
    return url;
  }

  // Relative reference: needs a base.
  if (base == nullptr) {
    return std::nullopt;
  }
  Url url = *base;
  if (text.front() == '/') {
    AssignTarget(url, text);
  } else if (text.front() == '?') {
    url.query = std::string(text.substr(1));
  } else {
    std::string resolved = std::string(DirOf(base->path)) + std::string(text);
    AssignTarget(url, resolved);
  }
  url.path = NormalizePath(url.path);
  return url;
}

}  // namespace mfc
