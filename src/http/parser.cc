#include "src/http/parser.h"

#include <charconv>

namespace mfc {
namespace http_internal {
namespace {

constexpr size_t kMaxLineLength = 16 * 1024;
constexpr size_t kMaxHeaderCount = 128;

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsTokenChar(char c) {
  if (c >= 'a' && c <= 'z') {
    return true;
  }
  if (c >= 'A' && c <= 'Z') {
    return true;
  }
  if (c >= '0' && c <= '9') {
    return true;
  }
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

void MessageParserBase::Fail(std::string msg) {
  phase_ = ParsePhase::kError;
  error_ = std::move(msg);
}

void MessageParserBase::OnHeadersComplete() {
  if (!expect_body_) {
    phase_ = ParsePhase::kDone;
    return;
  }
  auto length = Headers().ContentLength();
  if (Headers().Has("Content-Length") && !length.has_value()) {
    Fail("malformed Content-Length");
    return;
  }
  body_remaining_ = length.value_or(0);
  if (body_remaining_ == 0) {
    phase_ = ParsePhase::kDone;
  } else {
    phase_ = ParsePhase::kBody;
  }
}

size_t MessageParserBase::FeedInternal(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() && phase_ != ParsePhase::kDone && phase_ != ParsePhase::kError) {
    if (phase_ == ParsePhase::kBody) {
      size_t take = std::min<uint64_t>(body_remaining_, data.size() - consumed);
      Body().append(data.substr(consumed, take));
      consumed += take;
      body_remaining_ -= take;
      if (body_remaining_ == 0) {
        phase_ = ParsePhase::kDone;
      }
      continue;
    }
    // Line-oriented phases: accumulate until LF.
    auto lf = data.find('\n', consumed);
    if (lf == std::string_view::npos) {
      buffer_.append(data.substr(consumed));
      consumed = data.size();
      if (buffer_.size() > kMaxLineLength) {
        Fail("line too long");
      }
      break;
    }
    buffer_.append(data.substr(consumed, lf - consumed));
    consumed = lf + 1;
    if (buffer_.size() > kMaxLineLength) {
      Fail("line too long");
      break;
    }
    std::string line = std::move(buffer_);
    buffer_.clear();
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (phase_ == ParsePhase::kStartLine) {
      if (line.empty()) {
        continue;  // tolerate leading blank lines (RFC 9112 §2.2)
      }
      if (!ParseStartLine(line)) {
        // ParseStartLine already set the error.
        break;
      }
      phase_ = ParsePhase::kHeaders;
    } else {  // kHeaders
      if (line.empty()) {
        OnHeadersComplete();
        continue;
      }
      auto colon = line.find(':');
      if (colon == std::string::npos || colon == 0) {
        Fail("malformed header line");
        break;
      }
      std::string_view name = std::string_view(line).substr(0, colon);
      for (char c : name) {
        if (!IsTokenChar(c)) {
          Fail("bad header name");
          break;
        }
      }
      if (phase_ == ParsePhase::kError) {
        break;
      }
      if (Headers().Size() >= kMaxHeaderCount) {
        Fail("too many headers");
        break;
      }
      Headers().Add(name, TrimOws(std::string_view(line).substr(colon + 1)));
    }
  }
  return consumed;
}

}  // namespace http_internal

bool RequestParser::ParseStartLine(std::string_view line) {
  auto sp1 = line.find(' ');
  auto sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    Fail("malformed request line");
    return false;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (method == "GET") {
    request_.method = HttpMethod::kGet;
  } else if (method == "HEAD") {
    request_.method = HttpMethod::kHead;
  } else if (method == "POST") {
    request_.method = HttpMethod::kPost;
  } else {
    Fail("unsupported method");
    return false;
  }
  if (target.empty() || target.front() != '/') {
    Fail("bad request target");
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    Fail("unsupported HTTP version");
    return false;
  }
  request_.target = std::string(target);
  return true;
}

bool ResponseParser::ParseStartLine(std::string_view line) {
  // "HTTP/1.1 200 OK"
  auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    Fail("malformed status line");
    return false;
  }
  std::string_view version = line.substr(0, sp1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    Fail("unsupported HTTP version");
    return false;
  }
  auto rest = line.substr(sp1 + 1);
  auto sp2 = rest.find(' ');
  std::string_view code_sv = sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  int code = 0;
  auto [ptr, ec] = std::from_chars(code_sv.data(), code_sv.data() + code_sv.size(), code);
  if (ec != std::errc() || ptr != code_sv.data() + code_sv.size() || code < 100 || code > 599) {
    Fail("bad status code");
    return false;
  }
  response_.status = static_cast<HttpStatus>(code);
  return true;
}

}  // namespace mfc
