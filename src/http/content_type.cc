#include "src/http/content_type.h"

#include <algorithm>
#include <cctype>
#include <string>

namespace mfc {
namespace {

std::string ExtensionOf(std::string_view path) {
  auto slash = path.rfind('/');
  std::string_view file = slash == std::string_view::npos ? path : path.substr(slash + 1);
  auto dot = file.rfind('.');
  if (dot == std::string_view::npos) {
    return "";
  }
  std::string ext(file.substr(dot + 1));
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return ext;
}

}  // namespace

ContentClass ClassifyPath(std::string_view path) {
  std::string ext = ExtensionOf(path);
  if (ext.empty() || ext == "html" || ext == "htm" || ext == "txt" || ext == "css" ||
      ext == "xml" || ext == "js" || ext == "php" || ext == "asp" || ext == "jsp") {
    return ContentClass::kText;
  }
  if (ext == "gif" || ext == "jpg" || ext == "jpeg" || ext == "png" || ext == "bmp" ||
      ext == "ico" || ext == "svg") {
    return ContentClass::kImage;
  }
  if (ext == "pdf" || ext == "exe" || ext == "gz" || ext == "tgz" || ext == "zip" ||
      ext == "tar" || ext == "bz2" || ext == "iso" || ext == "dmg" || ext == "msi" ||
      ext == "bin" || ext == "rpm" || ext == "deb" || ext == "avi" || ext == "mpg" ||
      ext == "mpeg" || ext == "mp4" || ext == "mp3" || ext == "mov" || ext == "wmv" ||
      ext == "ps" || ext == "doc" || ext == "ppt" || ext == "xls") {
    return ContentClass::kBinary;
  }
  return ContentClass::kUnknown;
}

std::string_view MimeTypeForPath(std::string_view path) {
  std::string ext = ExtensionOf(path);
  if (ext.empty() || ext == "html" || ext == "htm" || ext == "php" || ext == "asp" ||
      ext == "jsp") {
    return "text/html";
  }
  if (ext == "txt") {
    return "text/plain";
  }
  if (ext == "css") {
    return "text/css";
  }
  if (ext == "js") {
    return "application/javascript";
  }
  if (ext == "xml") {
    return "application/xml";
  }
  if (ext == "gif") {
    return "image/gif";
  }
  if (ext == "jpg" || ext == "jpeg") {
    return "image/jpeg";
  }
  if (ext == "png") {
    return "image/png";
  }
  if (ext == "pdf") {
    return "application/pdf";
  }
  if (ext == "gz" || ext == "tgz") {
    return "application/gzip";
  }
  if (ext == "zip") {
    return "application/zip";
  }
  if (ext == "mp4" || ext == "mpg" || ext == "mpeg") {
    return "video/mpeg";
  }
  return "application/octet-stream";
}

}  // namespace mfc
