#include "src/http/status.h"

namespace mfc {

std::string_view ReasonPhrase(HttpStatus status) {
  switch (status) {
    case HttpStatus::kOk:
      return "OK";
    case HttpStatus::kNoContent:
      return "No Content";
    case HttpStatus::kMovedPermanently:
      return "Moved Permanently";
    case HttpStatus::kFound:
      return "Found";
    case HttpStatus::kNotModified:
      return "Not Modified";
    case HttpStatus::kBadRequest:
      return "Bad Request";
    case HttpStatus::kForbidden:
      return "Forbidden";
    case HttpStatus::kNotFound:
      return "Not Found";
    case HttpStatus::kRequestTimeout:
      return "Request Timeout";
    case HttpStatus::kTooManyRequests:
      return "Too Many Requests";
    case HttpStatus::kInternalServerError:
      return "Internal Server Error";
    case HttpStatus::kBadGateway:
      return "Bad Gateway";
    case HttpStatus::kServiceUnavailable:
      return "Service Unavailable";
    case HttpStatus::kGatewayTimeout:
      return "Gateway Timeout";
    case HttpStatus::kClientTimeout:
      return "Client Timeout";
  }
  return "Unknown";
}

}  // namespace mfc
