// HTTP status codes used by the simulated servers and the client agents.
#ifndef MFC_SRC_HTTP_STATUS_H_
#define MFC_SRC_HTTP_STATUS_H_

#include <string_view>

namespace mfc {

enum class HttpStatus : int {
  kOk = 200,
  kNoContent = 204,
  kMovedPermanently = 301,
  kFound = 302,
  kNotModified = 304,
  kBadRequest = 400,
  kForbidden = 403,
  kNotFound = 404,
  kRequestTimeout = 408,
  kTooManyRequests = 429,
  kInternalServerError = 500,
  kBadGateway = 502,
  kServiceUnavailable = 503,
  kGatewayTimeout = 504,
  // Client-side sentinel the paper uses: requests killed at the 10 s timeout
  // are recorded with code=ERR. Not a wire value.
  kClientTimeout = 0,
};

std::string_view ReasonPhrase(HttpStatus status);

constexpr bool IsSuccess(HttpStatus s) {
  int code = static_cast<int>(s);
  return code >= 200 && code < 300;
}

constexpr bool IsServerError(HttpStatus s) {
  int code = static_cast<int>(s);
  return code >= 500 && code < 600;
}

}  // namespace mfc

#endif  // MFC_SRC_HTTP_STATUS_H_
