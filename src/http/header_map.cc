#include "src/http/header_map.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace mfc {

bool HeaderNameEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void HeaderMap::Add(std::string_view name, std::string_view value) {
  entries_.push_back(Entry{std::string(name), std::string(value)});
}

void HeaderMap::Set(std::string_view name, std::string_view value) {
  Remove(name);
  Add(name, value);
}

std::optional<std::string_view> HeaderMap::Get(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (HeaderNameEquals(e.name, name)) {
      return std::string_view(e.value);
    }
  }
  return std::nullopt;
}

size_t HeaderMap::Remove(std::string_view name) {
  size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return HeaderNameEquals(e.name, name); }),
                 entries_.end());
  return before - entries_.size();
}

std::optional<uint64_t> HeaderMap::ContentLength() const {
  auto value = Get("Content-Length");
  if (!value.has_value()) {
    return std::nullopt;
  }
  uint64_t n = 0;
  auto sv = *value;
  auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), n);
  if (ec != std::errc() || ptr != sv.data() + sv.size()) {
    return std::nullopt;
  }
  return n;
}

}  // namespace mfc
