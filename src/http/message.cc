#include "src/http/message.h"

namespace mfc {

std::string_view MethodName(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet:
      return "GET";
    case HttpMethod::kHead:
      return "HEAD";
    case HttpMethod::kPost:
      return "POST";
  }
  return "GET";
}

HttpRequest HttpRequest::For(HttpMethod method, const Url& url) {
  HttpRequest req;
  req.method = method;
  req.target = url.RequestTarget();
  std::string host = url.host;
  if (url.port != 80) {
    host += ":" + std::to_string(url.port);
  }
  req.headers.Set("Host", host);
  req.headers.Set("User-Agent", "mfc-client/1.0");
  return req;
}

std::string_view HttpRequest::Path() const {
  std::string_view t = target;
  auto q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::Query() const {
  std::string_view t = target;
  auto q = t.find('?');
  return q == std::string_view::npos ? std::string_view() : t.substr(q + 1);
}

std::string HttpRequest::Serialize() const {
  std::string out;
  out.reserve(64 + body.size());
  out.append(MethodName(method));
  out.push_back(' ');
  out.append(target);
  out.append(" HTTP/1.1\r\n");
  bool have_length = headers.Has("Content-Length");
  for (const auto& e : headers.Entries()) {
    out.append(e.name).append(": ").append(e.value).append("\r\n");
  }
  if (!have_length && !body.empty()) {
    out.append("Content-Length: ").append(std::to_string(body.size())).append("\r\n");
  }
  out.append("\r\n");
  out.append(body);
  return out;
}

HttpResponse HttpResponse::Make(HttpStatus status, std::string_view content_type,
                                std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  resp.headers.Set("Content-Type", content_type);
  resp.headers.Set("Content-Length", std::to_string(resp.body.size()));
  return resp;
}

std::string HttpResponse::Serialize() const {
  std::string out;
  out.reserve(64 + body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(static_cast<int>(status)));
  out.push_back(' ');
  out.append(ReasonPhrase(status));
  out.append("\r\n");
  bool have_length = headers.Has("Content-Length");
  for (const auto& e : headers.Entries()) {
    out.append(e.name).append(": ").append(e.value).append("\r\n");
  }
  if (!have_length) {
    out.append("Content-Length: ").append(std::to_string(body.size())).append("\r\n");
  }
  out.append("\r\n");
  out.append(body);
  return out;
}

}  // namespace mfc
