// File-extension → content classification heuristics, as in Section 2.2.1:
// the profiler classifies crawled objects into regular/text, binaries,
// images, and queries using file name extensions and sizes.
#ifndef MFC_SRC_HTTP_CONTENT_TYPE_H_
#define MFC_SRC_HTTP_CONTENT_TYPE_H_

#include <string_view>

namespace mfc {

enum class ContentClass {
  kText,     // .html, .txt, .css, ...
  kBinary,   // .pdf, .exe, .tar.gz, .zip, ...
  kImage,    // .gif, .jpg, .png, ...
  kQuery,    // URL with '?' (CGI script)
  kUnknown,
};

// Classifies by URL path (extension heuristics). Query detection is the
// caller's job since it depends on the full URL, not the path.
ContentClass ClassifyPath(std::string_view path);

// MIME type string for a path, e.g. "text/html".
std::string_view MimeTypeForPath(std::string_view path);

}  // namespace mfc

#endif  // MFC_SRC_HTTP_CONTENT_TYPE_H_
