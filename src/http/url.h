// Minimal URL handling for the crawler and the client agents.
//
// Supports the subset the paper's tooling needs: http scheme, host, optional
// port, path, optional query string. A URL with a query string is what the
// paper treats as a candidate "Small Query" (an URL with a '?' indicating a
// CGI script).
#ifndef MFC_SRC_HTTP_URL_H_
#define MFC_SRC_HTTP_URL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mfc {

struct Url {
  std::string scheme = "http";
  std::string host;
  uint16_t port = 80;
  std::string path = "/";   // always starts with '/'
  std::string query;        // without the leading '?'; empty if none

  bool HasQuery() const { return !query.empty(); }

  // "/path?query" — what goes on the request line.
  std::string RequestTarget() const;

  // Full canonical form "http://host[:port]/path[?query]".
  std::string ToString() const;

  bool operator==(const Url&) const = default;
};

// Parses an absolute URL ("http://host[:port][/path][?query]") or, with
// |base| given, a relative reference the way a crawler resolves hrefs:
//   - absolute URL: taken as-is
//   - "/abs/path"  : base host, new path
//   - "rel/path"   : resolved against the base path's directory
// Fragments ("#...") are stripped. Returns nullopt for non-http schemes or
// malformed input.
std::optional<Url> ParseUrl(std::string_view text, const Url* base = nullptr);

}  // namespace mfc

#endif  // MFC_SRC_HTTP_URL_H_
