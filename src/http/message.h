// HTTP/1.1 request and response value types plus wire serialization.
//
// The simulated transport moves byte counts, not bytes, for performance — but
// control-plane code (crawler, profiler, tests) works with these real message
// types, and the parsers in parser.h accept the serialized form, so the HTTP
// layer is a genuine implementation rather than a stub.
#ifndef MFC_SRC_HTTP_MESSAGE_H_
#define MFC_SRC_HTTP_MESSAGE_H_

#include <string>
#include <string_view>

#include "src/http/header_map.h"
#include "src/http/status.h"
#include "src/http/url.h"

namespace mfc {

enum class HttpMethod { kGet, kHead, kPost };

std::string_view MethodName(HttpMethod method);

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  std::string target = "/";  // path[?query], as on the request line
  HeaderMap headers;
  std::string body;

  // Builds a well-formed request for |url| (sets Host, Content-Length).
  static HttpRequest For(HttpMethod method, const Url& url);

  // Path component of the target (no query).
  std::string_view Path() const;
  // Query component (after '?'), empty if none.
  std::string_view Query() const;
  bool HasQuery() const { return !Query().empty(); }

  // Wire form: request line + headers + CRLF + body.
  std::string Serialize() const;
};

struct HttpResponse {
  HttpStatus status = HttpStatus::kOk;
  HeaderMap headers;
  std::string body;

  static HttpResponse Make(HttpStatus status, std::string_view content_type,
                           std::string body);

  // Wire form: status line + headers + CRLF + body.
  std::string Serialize() const;
};

}  // namespace mfc

#endif  // MFC_SRC_HTTP_MESSAGE_H_
