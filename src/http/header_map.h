// Case-insensitive HTTP header collection preserving insertion order.
#ifndef MFC_SRC_HTTP_HEADER_MAP_H_
#define MFC_SRC_HTTP_HEADER_MAP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mfc {

class HeaderMap {
 public:
  struct Entry {
    std::string name;
    std::string value;
  };

  // Appends a header (duplicates allowed, like the wire format).
  void Add(std::string_view name, std::string_view value);

  // Replaces all headers with |name| by a single entry.
  void Set(std::string_view name, std::string_view value);

  // First value for |name| (case-insensitive), if present.
  std::optional<std::string_view> Get(std::string_view name) const;

  bool Has(std::string_view name) const { return Get(name).has_value(); }

  // Removes every header with |name|; returns how many were removed.
  size_t Remove(std::string_view name);

  // Content-Length parsed as an integer, if present and well-formed.
  std::optional<uint64_t> ContentLength() const;

  const std::vector<Entry>& Entries() const { return entries_; }
  size_t Size() const { return entries_.size(); }
  bool Empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

// ASCII case-insensitive comparison, the HTTP header name rule.
bool HeaderNameEquals(std::string_view a, std::string_view b);

}  // namespace mfc

#endif  // MFC_SRC_HTTP_HEADER_MAP_H_
