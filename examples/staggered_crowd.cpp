// Staggered Mini-Flash Crowds (Section 6, "Staggered Mini-FC").
//
// "If a Web server performs poorly with respect to tight synchronization,
// but provides low response times when the requests arrive somewhat
// staggered, then we can conclude that the server can handle the medium and
// low volume flash-crowds reasonably well."
//
// We profile one server under a sweep of inter-arrival spacings and report
// the spacing at which its knee disappears — its burst tolerance.
#include <cstdio>

#include "src/core/experiment_runner.h"

namespace {

std::string RunWithSpacing(mfc::SimDuration spacing, uint64_t seed) {
  mfc::SiteInstance site = mfc::MakeQtnpProfile();  // request-handling knee ~20
  mfc::DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 85;
  mfc::Deployment deployment(site, options);
  mfc::ExperimentConfig config;
  config.threshold = mfc::Millis(100);
  config.max_crowd = 60;
  config.stagger_spacing = spacing;
  mfc::ExperimentResult result =
      deployment.RunMfc(config, deployment.ObjectsFromContent(), seed + 3);
  const mfc::StageResult* base = result.Stage(mfc::StageKind::kBase);
  if (base == nullptr) {
    return "n/a";
  }
  return base->stopped ? std::to_string(base->stopping_crowd_size)
                       : "NoStop(" + std::to_string(base->max_crowd_tested) + ")";
}

}  // namespace

int main() {
  printf("Burst tolerance sweep — Base stage verdict vs. arrival spacing\n");
  printf("(target: front end with a ~20-simultaneous-request knee)\n\n");
  printf("%-30s %s\n", "inter-arrival spacing", "stopping crowd size");
  struct Case {
    const char* label;
    mfc::SimDuration spacing;
  };
  const Case cases[] = {
      {"0 ms (tight sync, std MFC)", 0.0},
      {"5 ms", mfc::Millis(5)},
      {"20 ms", mfc::Millis(20)},
      {"50 ms", mfc::Millis(50)},
      {"200 ms", mfc::Millis(200)},
  };
  uint64_t seed = 41;
  for (const Case& c : cases) {
    printf("%-30s %s\n", c.label, RunWithSpacing(c.spacing, seed++).c_str());
  }
  printf("\nReading the sweep: the knee under tight sync shows what a true flash crowd\n"
         "does; the spacing at which the knee vanishes is the arrival rate the server\n"
         "absorbs gracefully — useful for sizing request-shaping buffers (Section 6).\n");
  return 0;
}
