// DDoS exposure audit (Section 6, "DDoS Vulnerabilities").
//
// "A site operator must first understand which resources are the most easily
// vulnerable to attacks... the operator needs to understand at what volume of
// requests a server resource starts to 'keel over'."
//
// This audit runs all three stages against a site, ranks the sub-systems by
// their keel-over volume, and prints the kind of brief a security review
// would want: the cheapest application-level attack and its request budget.
#include <cstdio>
#include <vector>

#include "src/core/experiment_runner.h"
#include "src/core/inference.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 99;

  // The audited site: decent bandwidth, mediocre back end — a common shape.
  mfc::Rng rng(seed);
  mfc::SiteInstance site = mfc::SampleSite(rng, mfc::Cohort::kStartup);
  mfc::DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 85;
  mfc::Deployment deployment(site, options);

  mfc::ExperimentConfig config;
  config.threshold = mfc::Millis(100);
  config.max_crowd = 85;
  mfc::ExperimentResult result =
      deployment.RunMfc(config, deployment.ObjectsFromContent(), seed + 7);

  struct Exposure {
    std::string vector;
    std::string subsystem;
    const mfc::StageResult* stage;
  };
  std::vector<Exposure> exposures = {
      {"HEAD flood of the base page", "request processing",
       result.Stage(mfc::StageKind::kBase)},
      {"unique-query flood (cache-busting)", "back-end data processing",
       result.Stage(mfc::StageKind::kSmallQuery)},
      {"bulk-download flood (e-protest)", "outbound bandwidth",
       result.Stage(mfc::StageKind::kLargeObject)},
  };

  printf("DDoS exposure audit — keel-over request volumes (theta = 100 ms)\n\n");
  printf("%-38s %-28s %s\n", "attack vector", "sub-system", "keel-over volume");
  const mfc::StageResult* weakest = nullptr;
  for (const Exposure& e : exposures) {
    std::string volume = "unknown";
    if (e.stage != nullptr) {
      volume = e.stage->stopped
                   ? std::to_string(e.stage->stopping_crowd_size) + " concurrent requests"
                   : "> " + std::to_string(e.stage->max_crowd_tested) + " (not reached)";
      if (e.stage->stopped &&
          (weakest == nullptr || !weakest->stopped ||
           e.stage->stopping_crowd_size < weakest->stopping_crowd_size)) {
        weakest = e.stage;
      }
    }
    printf("%-38s %-28s %s\n", e.vector.c_str(), e.subsystem.c_str(), volume.c_str());
  }

  printf("\n");
  if (weakest != nullptr) {
    printf("Weakest point: %s — a botnet needs only ~%zu synchronized requests to add\n"
           "100 ms for most users. Mitigations to evaluate first: request shaping on\n"
           "that path, caching dynamic responses, or capacity there (Section 6).\n",
           std::string(SubsystemFor(weakest->kind)).c_str(), weakest->stopping_crowd_size);
  } else {
    printf("No sub-system keeled over at the tested volumes; at this probe budget the\n"
           "site withstands simple application-level floods.\n");
  }
  return 0;
}
