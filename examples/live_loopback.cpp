// Live-runtime demo: the MFC service on real sockets.
//
// Boots a real HTTP server (serving a generated site), a fleet of client
// agents, and the coordinator — all over loopback TCP/UDP on one reactor —
// then runs the *same* Coordinator state machine used by the simulation
// against a target whose back end degrades beyond a concurrency knee.
//
//   $ ./live_loopback [fleet_size] [knee]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/content/site_generator.h"
#include "src/core/coordinator.h"
#include "src/core/inference.h"
#include "src/rt/client_agent.h"
#include "src/rt/live_harness.h"
#include "src/rt/live_http_server.h"

int main(int argc, char** argv) {
  size_t fleet_size = argc > 1 ? static_cast<size_t>(atoi(argv[1])) : 16;
  size_t knee = argc > 2 ? static_cast<size_t>(atoi(argv[2])) : 8;

  mfc::Reactor reactor;

  // Target: a real HTTP server whose service time jumps once more than
  // |knee| requests are in flight (an overloaded back end).
  mfc::Rng rng(7);
  mfc::SiteSpec spec;
  spec.page_count = 4;
  spec.binary_count = 1;
  spec.binary_size_min = 150 * 1024;
  spec.binary_size_max = 150 * 1024;
  mfc::ContentStore content = mfc::GenerateSite(rng, spec);
  mfc::LiveHttpServer server(reactor, &content);
  server.SetServiceDelay(
      [knee](size_t concurrent) { return concurrent > knee ? 0.150 : 0.002; });
  printf("target server listening on 127.0.0.1:%u (knee at %zu concurrent requests)\n",
         server.Port(), knee);

  // Coordinator + fleet.
  mfc::LiveHarness harness(reactor, server.Port());
  harness.set_request_timeout(2.0);
  std::vector<std::unique_ptr<mfc::ClientAgent>> agents;
  for (size_t i = 0; i < fleet_size; ++i) {
    agents.push_back(std::make_unique<mfc::ClientAgent>(
        reactor, i, mfc::LoopbackEndpoint(harness.ControlPort())));
    agents.back()->set_request_timeout(2.0);
    agents.back()->Register();
  }
  size_t registered = harness.WaitForRegistrations(fleet_size, 2.0);
  printf("coordinator on UDP :%u — %zu/%zu agents registered\n\n", harness.ControlPort(),
         registered, fleet_size);

  // Loopback-friendly experiment parameters (no 15 s leads or 10 s gaps).
  mfc::ExperimentConfig config;
  config.threshold = mfc::Millis(100);
  config.crowd_step = 2;
  config.max_crowd = fleet_size;
  config.min_clients = fleet_size;
  config.min_crowd_for_inference = 4;
  config.request_timeout = mfc::Seconds(2);
  config.schedule_lead = mfc::Seconds(0.1);
  config.epoch_gap = mfc::Seconds(0.05);

  mfc::StageObjects objects;
  objects.base_page = *mfc::ParseUrl("http://127.0.0.1/");
  mfc::Coordinator coordinator(harness, config, 5);
  mfc::ExperimentResult result = coordinator.Run(objects, {mfc::StageKind::kBase});

  for (const mfc::EpochResult& epoch : result.Stage(mfc::StageKind::kBase)->epochs) {
    printf("  epoch crowd=%-3zu samples=%-3zu median normalized=%.1f ms%s%s\n",
           epoch.crowd_size, epoch.samples_received, mfc::ToMillis(epoch.metric),
           epoch.check_phase ? "  [check]" : "",
           epoch.exceeded_threshold ? "  EXCEEDED" : "");
  }
  printf("\n%s\n", mfc::AnalyzeExperiment(result, config).ToText().c_str());
  printf("server handled %llu real HTTP requests over loopback\n",
         static_cast<unsigned long long>(server.RequestsServed()));
  return 0;
}
