// Live-runtime demo: the MFC service on real sockets.
//
// Boots a real HTTP server (serving a generated site), a fleet of client
// agents, and the coordinator — all over loopback on one reactor — then runs
// the *same* Coordinator state machine used by the simulation against a
// target whose back end degrades beyond a concurrency knee.
//
// The control plane rides the session layer (DESIGN.md §13): every command
// and reply is a reliable session send, so injected faults (--drop, --dup,
// --delay, --connect-fail — the live analog of the simulation's
// control_loss_rate) are absorbed by session retransmits and the run reaches
// the same verdict as a clean one. --transport=memory swaps the UDP sockets
// for an in-process MemoryHub: no file descriptors per agent, which is what
// lets the fleet soak run hundreds of agents on one box.
//
// The run's health plane (DESIGN.md §11) is opt-in: --stats-stream streams
// per-agent health rows as JSONL, --metrics exports the live.* /
// live.session.* counters as CSV, and --unhealthy-after hands the
// coordinator's eviction logic a transport-level verdict.
//
// The last line of a successful run is machine-readable
// (tools/check_fleet_soak.py compares it across clean/faulted runs):
//
//   RESULT transport=memory fleet=200 registered=200 stopped=1
//          reason=ConstraintFound crowd=6 max_tested=8
//
//   $ ./live_loopback [fleet_size] [knee] [--transport=udp|memory]
//                     [--crowd-step=N] [--drop=P] [--dup=P] [--delay=P]
//                     [--connect-fail=P] [--fault-seed=N]
//                     [--stats-stream=FILE|-] [--stats-interval=S]
//                     [--metrics=FILE] [--unhealthy-after=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "src/content/site_generator.h"
#include "src/core/arg_parse.h"
#include "src/core/coordinator.h"
#include "src/core/export.h"
#include "src/core/inference.h"
#include "src/rt/client_agent.h"
#include "src/rt/fault_injector.h"
#include "src/rt/live_harness.h"
#include "src/rt/live_http_server.h"
#include "src/rt/transport.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/stats_stream.h"

namespace {

// True when |arg| is "--name=..." ; the text after '=' lands in |value|.
bool MatchFlag(const char* arg, const char* name, std::string* value) {
  size_t len = strlen(name);
  if (strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [fleet_size] [knee] [--transport=udp|memory] [--crowd-step=N]\n"
          "          [--drop=P] [--dup=P] [--delay=P] [--connect-fail=P] [--fault-seed=N]\n"
          "          [--stats-stream=FILE|-] [--stats-interval=S] [--metrics=FILE]\n"
          "          [--unhealthy-after=N]\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t fleet_size = 16;
  size_t knee = 8;
  size_t crowd_step = 2;
  mfc::FaultConfig faults;
  uint64_t fault_seed = 11;
  std::string transport_kind = "udp";
  std::string stats_path;
  std::string metrics_path;
  double stats_interval = 0.5;
  size_t unhealthy_after = 0;
  size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    bool ok = true;
    if (MatchFlag(arg, "--drop", &value)) {
      ok = mfc::ParseDoubleFlag("--drop", value, &faults.drop_rate);
    } else if (MatchFlag(arg, "--dup", &value)) {
      ok = mfc::ParseDoubleFlag("--dup", value, &faults.duplicate_rate);
    } else if (MatchFlag(arg, "--delay", &value)) {
      ok = mfc::ParseDoubleFlag("--delay", value, &faults.delay_rate);
    } else if (MatchFlag(arg, "--connect-fail", &value)) {
      ok = mfc::ParseDoubleFlag("--connect-fail", value, &faults.connect_failure_rate);
    } else if (MatchFlag(arg, "--fault-seed", &value)) {
      ok = mfc::ParseU64Flag("--fault-seed", value, &fault_seed);
    } else if (MatchFlag(arg, "--stats-interval", &value)) {
      ok = mfc::ParseDoubleFlag("--stats-interval", value, &stats_interval) &&
           stats_interval > 0;
      if (!ok) {
        fprintf(stderr, "--stats-interval must be a positive number of seconds\n");
      }
    } else if (MatchFlag(arg, "--unhealthy-after", &value)) {
      ok = mfc::ParseSizeFlag("--unhealthy-after", value, &unhealthy_after);
    } else if (MatchFlag(arg, "--crowd-step", &value)) {
      ok = mfc::ParseSizeFlag("--crowd-step", value, &crowd_step) && crowd_step > 0;
      if (!ok) {
        fprintf(stderr, "--crowd-step must be a positive integer\n");
      }
    } else if (MatchFlag(arg, "--transport", &value)) {
      transport_kind = value;
      if (transport_kind != "udp" && transport_kind != "memory") {
        fprintf(stderr, "invalid value for --transport: '%s' (expected udp or memory)\n",
                value.c_str());
        return Usage(argv[0]);
      }
    } else if (MatchFlag(arg, "--stats-stream", &value)) {
      stats_path = value;
    } else if (MatchFlag(arg, "--metrics", &value)) {
      metrics_path = value;
    } else if (strncmp(arg, "--", 2) == 0) {
      fprintf(stderr, "unknown flag: %s\n", arg);
      return Usage(argv[0]);
    } else if (positional == 0) {
      ok = mfc::ParseSizeFlag("fleet_size", arg, &fleet_size);
      ++positional;
    } else if (positional == 1) {
      ok = mfc::ParseSizeFlag("knee", arg, &knee);
      ++positional;
    } else {
      fprintf(stderr, "unexpected argument: %s\n", arg);
      return Usage(argv[0]);
    }
    if (!ok) {
      return Usage(argv[0]);
    }
  }
  faults.seed = fault_seed;

  mfc::Reactor reactor;

  // Target: a real HTTP server whose service time jumps once more than
  // |knee| requests are in flight (an overloaded back end).
  mfc::Rng rng(7);
  mfc::SiteSpec spec;
  spec.page_count = 4;
  spec.binary_count = 1;
  spec.binary_size_min = 150 * 1024;
  spec.binary_size_max = 150 * 1024;
  mfc::ContentStore content = mfc::GenerateSite(rng, spec);
  mfc::LiveHttpServer server(reactor, &content);
  server.SetServiceDelay(
      [knee](size_t concurrent) { return concurrent > knee ? 0.150 : 0.002; });
  printf("target server listening on 127.0.0.1:%u (knee at %zu concurrent requests)\n",
         server.Port(), knee);

  // Coordinator + fleet. Each agent gets its own fault stream so a fixed
  // --fault-seed reproduces the same fault schedule across the whole fleet.
  mfc::RetryPolicy retry;
  if (faults.Enabled()) {
    retry.max_attempts = 8;
    retry.initial_backoff = mfc::Millis(20);
  }

  // Control-plane backend: real UDP sockets, or a MemoryHub carrying the
  // same session frames through reactor timers (no fds — the fleet soak's
  // hundreds of agents would otherwise need one socket each).
  mfc::ReactorTimerSource hub_clock(reactor);
  mfc::MemoryHub hub(hub_clock);
  std::unique_ptr<mfc::LiveHarness> harness;
  mfc::TransportAddress coordinator_address;
  if (transport_kind == "memory") {
    auto endpoint = hub.CreateEndpoint();
    coordinator_address = endpoint->LocalAddress();
    harness = std::make_unique<mfc::LiveHarness>(reactor, server.Port(),
                                                 std::move(endpoint));
  } else {
    harness = std::make_unique<mfc::LiveHarness>(reactor, server.Port());
    coordinator_address =
        mfc::TransportAddress::Udp(mfc::LoopbackEndpoint(harness->ControlPort()));
  }
  harness->set_request_timeout(2.0);
  harness->set_retry_policy(retry);
  mfc::MetricsRegistry metrics;
  harness->SetMetrics(&metrics);
  if (unhealthy_after > 0) {
    harness->set_unhealthy_after_misses(unhealthy_after);
  }

  // Health plane: a self-rearming reactor timer samples the per-agent health
  // table (plus live.* counter deltas) while the experiment runs. Read-only
  // against the harness, so attaching it cannot change the verdict.
  std::unique_ptr<mfc::StatsStream> stats;
  if (!stats_path.empty()) {
    std::string error;
    stats = mfc::StatsStream::Open(stats_path, &error);
    if (stats == nullptr) {
      fprintf(stderr, "--stats-stream: %s\n", error.c_str());
      return 2;
    }
  }
  mfc::MetricsDeltaTracker deltas;
  auto emit_health = [&] {
    mfc::StatsSnapshot snapshot;
    snapshot.t = reactor.Now();
    snapshot.clock = "wall";
    snapshot.source = "live";
    snapshot.agents = harness->SnapshotAgents();
    deltas.Collect(metrics, &snapshot.counter_deltas);
    stats->Emit(std::move(snapshot));
  };
  bool sampling = stats != nullptr;
  std::function<void()> arm_sampler = [&] {
    reactor.ScheduleAfter(stats_interval, [&] {
      if (!sampling) {
        return;  // run finished; let the leftover timer die quietly
      }
      emit_health();
      arm_sampler();
    });
  };
  if (stats != nullptr) {
    arm_sampler();
  }
  std::vector<std::unique_ptr<mfc::FaultInjector>> injectors;
  std::vector<std::unique_ptr<mfc::ClientAgent>> agents;
  for (size_t i = 0; i < fleet_size; ++i) {
    if (transport_kind == "memory") {
      agents.push_back(std::make_unique<mfc::ClientAgent>(
          reactor, i, hub.CreateEndpoint(), coordinator_address));
    } else {
      agents.push_back(std::make_unique<mfc::ClientAgent>(
          reactor, i, mfc::LoopbackEndpoint(harness->ControlPort())));
    }
    agents.back()->set_request_timeout(2.0);
    agents.back()->set_retry_policy(retry);
    if (faults.Enabled()) {
      mfc::FaultConfig per_agent = faults;
      per_agent.seed = faults.seed + i;
      injectors.push_back(std::make_unique<mfc::FaultInjector>(per_agent));
      agents.back()->set_fault_injector(injectors.back().get());
    }
    agents.back()->Register();
  }
  if (faults.Enabled()) {
    printf("fault injection: drop=%.2f dup=%.2f delay=%.2f connect-fail=%.2f seed=%llu\n",
           faults.drop_rate, faults.duplicate_rate, faults.delay_rate,
           faults.connect_failure_rate, static_cast<unsigned long long>(faults.seed));
  }
  size_t registered = harness->WaitForRegistrations(fleet_size, faults.Enabled() ? 10.0 : 2.0);
  printf("coordinator (%s transport) — %zu/%zu agents registered\n\n",
         transport_kind.c_str(), registered, fleet_size);

  // Loopback-friendly experiment parameters (no 15 s leads or 10 s gaps).
  mfc::ExperimentConfig config;
  config.threshold = mfc::Millis(100);
  config.crowd_step = crowd_step;
  config.max_crowd = fleet_size;
  config.min_clients = fleet_size;
  config.min_crowd_for_inference = 4;
  config.request_timeout = mfc::Seconds(2);
  config.schedule_lead = mfc::Seconds(0.1);
  config.epoch_gap = mfc::Seconds(0.05);
  if (faults.Enabled()) {
    config.retry = retry;
    // Commands are re-sent across the lead and held client-side until the
    // burst instant, so a longer lead buys retry headroom, not idle time.
    config.schedule_lead = mfc::Seconds(0.25);
    config.min_clients = std::max<size_t>(1, fleet_size - fleet_size / 4);
    config.epoch_quorum = 0.5;       // re-run epochs that lose half their samples
    config.evict_after_misses = 3;   // replace clients that go silent
  }

  mfc::StageObjects objects;
  objects.base_page = *mfc::ParseUrl("http://127.0.0.1/");
  mfc::Coordinator coordinator(*harness, config, 5);
  mfc::ExperimentResult result = coordinator.Run(objects, {mfc::StageKind::kBase});
  if (stats != nullptr) {
    sampling = false;
    emit_health();  // final row: every feed ends with the post-run table
    stats->Flush();
  }

  for (const mfc::EpochResult& epoch : result.Stage(mfc::StageKind::kBase)->epochs) {
    printf("  epoch crowd=%-3zu samples=%-3zu median normalized=%.1f ms%s%s\n",
           epoch.crowd_size, epoch.samples_received, mfc::ToMillis(epoch.metric),
           epoch.check_phase ? "  [check]" : "",
           epoch.exceeded_threshold ? "  EXCEEDED" : "");
  }
  printf("\n%s\n", mfc::AnalyzeExperiment(result, config).ToText().c_str());
  printf("server handled %llu real HTTP requests over loopback\n",
         static_cast<unsigned long long>(server.RequestsServed()));
  if (faults.Enabled()) {
    uint64_t dropped = 0, duplicated = 0, delayed = 0, failed_connects = 0;
    for (const auto& injector : injectors) {
      dropped += injector->stats().dropped;
      duplicated += injector->stats().duplicated;
      delayed += injector->stats().delayed;
      failed_connects += injector->stats().failed_connects;
    }
    printf("faults injected: %llu datagrams dropped, %llu duplicated, %llu delayed, "
           "%llu connects failed\n",
           static_cast<unsigned long long>(dropped),
           static_cast<unsigned long long>(duplicated),
           static_cast<unsigned long long>(delayed),
           static_cast<unsigned long long>(failed_connects));
    // Transport-level recovery now lives in the session layer: count the
    // coordinator's retransmits plus the whole fleet's.
    uint64_t agent_retransmits = 0, agent_gave_up = 0;
    for (const auto& agent : agents) {
      agent_retransmits += agent->session_stats().retransmits;
      agent_gave_up += agent->session_stats().gave_up;
    }
    const mfc::SessionStats& ss = harness->session_stats();
    const mfc::ControlPlaneStats& cp = harness->stats();
    printf("session layer recovered: %llu coordinator + %llu agent retransmits, "
           "%llu duplicate frames suppressed, %llu transfers gave up\n",
           static_cast<unsigned long long>(ss.retransmits),
           static_cast<unsigned long long>(agent_retransmits),
           static_cast<unsigned long long>(ss.duplicates),
           static_cast<unsigned long long>(ss.gave_up + agent_gave_up));
    printf("control plane recovered: %llu rtt retries; %llu duplicate samples discarded\n",
           static_cast<unsigned long long>(cp.rtt_retries),
           static_cast<unsigned long long>(cp.duplicate_samples));
  }
  if (stats != nullptr) {
    printf("health plane: %llu snapshots -> %s\n",
           static_cast<unsigned long long>(stats->Emitted()), stats->Path().c_str());
  }
  if (!metrics_path.empty()) {
    FILE* out = fopen(metrics_path.c_str(), "w");
    if (out == nullptr) {
      fprintf(stderr, "--metrics: cannot write %s\n", metrics_path.c_str());
      return 2;
    }
    std::string csv = mfc::ExportMetricsCsv(metrics);
    fwrite(csv.data(), 1, csv.size(), out);
    fclose(out);
    printf("live.* metrics -> %s\n", metrics_path.c_str());
  }

  // Machine-readable verdict line, compared across clean/faulted runs by
  // tools/check_fleet_soak.py. Keep key=value, one line, last.
  const mfc::StageResult* base = result.Stage(mfc::StageKind::kBase);
  std::string reason =
      base != nullptr ? std::string(mfc::StageEndReasonName(base->end_reason)) : "none";
  printf("RESULT transport=%s fleet=%zu registered=%zu stopped=%d reason=%s "
         "crowd=%zu max_tested=%zu\n",
         transport_kind.c_str(), fleet_size, registered,
         base != nullptr && base->stopped ? 1 : 0, reason.c_str(),
         base != nullptr ? base->stopping_crowd_size : static_cast<size_t>(0),
         base != nullptr ? base->max_crowd_tested : static_cast<size_t>(0));
  return 0;
}
