// Quickstart: profile a site you know nothing about.
//
// Builds a simulated deployment, crawls it from the coordinator's vantage
// point to classify its content (Section 2.2.1), runs the full three-stage
// MFC experiment, and prints the operator-facing inference report.
//
//   $ ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "src/core/experiment_runner.h"
#include "src/core/inference.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 2008;

  // A mid-tier site drawn from the survey population — we do not peek at its
  // parameters; everything below is learned remotely.
  mfc::Rng rng(seed);
  mfc::SiteInstance site = mfc::SampleSite(rng, mfc::Cohort::kRank10KTo100K);
  mfc::DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 85;  // PlanetLab-like probe clients
  mfc::Deployment deployment(site, options);

  // 1. Profile: crawl the target and classify what it hosts.
  printf("Crawling target...\n");
  mfc::ContentProfile profile = deployment.CrawlProfile();
  printf("  pages crawled: %zu, URLs probed: %zu\n", profile.pages_crawled,
         profile.urls_probed);
  printf("  large-object candidates (>=100 KB): %zu\n", profile.large_objects.size());
  printf("  small-query candidates  (<15 KB, '?'): %zu\n\n", profile.small_queries.size());

  // 2. Run the three MFC stages with the standard configuration.
  mfc::ExperimentConfig config;
  config.threshold = mfc::Millis(100);
  config.crowd_step = 5;
  config.max_crowd = 85;
  mfc::StageObjects objects = mfc::SelectStageObjects(profile);
  printf("Running MFC (theta=100 ms, step 5, up to %zu concurrent requests)...\n\n",
         config.max_crowd);
  mfc::ExperimentResult result = deployment.RunMfc(config, objects, seed ^ 0xabcdef);

  // 3. Inferences.
  for (const mfc::StageResult& stage : result.stages) {
    std::string verdict = stage.stopped
                              ? "constrained at " + std::to_string(stage.stopping_crowd_size)
                              : "no constraint found";
    printf("  %-12s epochs=%-3zu requests=%-5llu verdict=%s\n",
           std::string(mfc::StageName(stage.kind)).c_str(), stage.epochs.size(),
           static_cast<unsigned long long>(stage.total_requests), verdict.c_str());
  }
  printf("\n%s\n", mfc::AnalyzeExperiment(result, config).ToText().c_str());
  return 0;
}
