// Capacity planning: compare two candidate upgrades before buying.
//
// The paper's motivating use (Section 1): "an application provider can
// compare the impact of an increase in database-intensive requests versus an
// increase in bandwidth-intensive requests... and make better decisions in
// prioritizing additional provisioning."
//
// We take a budget-constrained deployment whose Small Query and Large Object
// stages both stop, then evaluate the two upgrades the vendor offers —
// a faster database tier vs. a fatter access link — by re-running MFC
// against each candidate configuration.
#include <cstdio>

#include "src/core/experiment_runner.h"

namespace {

void Report(const char* label, const mfc::ExperimentResult& result) {
  printf("%-34s", label);
  for (mfc::StageKind kind : {mfc::StageKind::kBase, mfc::StageKind::kSmallQuery,
                              mfc::StageKind::kLargeObject}) {
    const mfc::StageResult* stage = result.Stage(kind);
    std::string verdict = "n/a";
    if (stage != nullptr) {
      verdict = stage->stopped ? std::to_string(stage->stopping_crowd_size)
                               : "NoStop(" + std::to_string(stage->max_crowd_tested) + ")";
    }
    printf(" %-14s", verdict.c_str());
  }
  printf("\n");
}

mfc::ExperimentResult Evaluate(const mfc::SiteInstance& site, uint64_t seed) {
  mfc::DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 85;
  mfc::Deployment deployment(site, options);
  mfc::ExperimentConfig config;
  config.threshold = mfc::Millis(100);
  config.max_crowd = 85;
  return deployment.RunMfc(config, deployment.ObjectsFromContent(), seed + 1);
}

}  // namespace

int main() {
  // The current deployment: one 2-core box, a 40 Mbit/s link, a DB that
  // takes ~5 ms per unique query.
  mfc::SiteInstance current = mfc::MakeQtnpProfile();
  current.server.head_cpu_s = 5e-4;          // front end is fine
  current.server.db_dedicated_cores = 1;     // a single creaky DB box
  current.site.query_rows_min = 1200;
  current.site.query_rows_max = 1200;
  current.server_access_bps = 5e6;           // 40 Mbit/s

  // Candidate A: double the DB tier (2 cores, same link).
  mfc::SiteInstance upgrade_db = current;
  upgrade_db.server.db_dedicated_cores = 4;

  // Candidate B: upgrade the link to 200 Mbit/s (same DB).
  mfc::SiteInstance upgrade_link = current;
  upgrade_link.server_access_bps = 25e6;

  printf("MFC verdicts (stopping crowd size per stage; bigger / NoStop = better)\n\n");
  printf("%-34s %-14s %-14s %-14s\n", "configuration", "Base", "SmallQuery", "LargeObject");
  Report("current (creaky DB, 40 Mbit/s)", Evaluate(current, 11));
  Report("candidate A: 4-core DB tier", Evaluate(upgrade_db, 22));
  Report("candidate B: 200 Mbit/s link", Evaluate(upgrade_link, 33));

  printf("\nReading the table: candidate A lifts the Small Query knee but leaves the\n"
         "Large Object knee where it was; candidate B does the opposite. Which one to\n"
         "buy depends on which request mix your flash crowds actually bring — and MFC\n"
         "lets you measure both ends before spending (Section 1).\n");
  return 0;
}
